"""Houses: NAT'd residences with a sampled device and resolver mix.

The sampler reproduces the resolver-platform structure of the paper's
Table 1: roughly 16% of houses funnel everything through the local ISP
resolvers (a forwarder intercepting DNS), most houses also carry Android
devices defaulting to Google Public DNS, a quarter use OpenDNS for their
non-Android devices, and a few percent use Cloudflare.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.dns.cache import CacheKey, DnsCache
from repro.dns.resolver import RecursiveResolver, StubResolver
from repro.errors import WorkloadError
from repro.simulation.faults import ConnectionBudget, RetryPolicy
from repro.monitor.capture import MonitorCapture
from repro.workload.devices import Device
from repro.workload.namespace import NameUniverse

NAT_PORT_LOW = 32768
NAT_PORT_HIGH = 60999


@dataclass(frozen=True, slots=True)
class HousePlan:
    """Everything needed to build one house, fixed before any sharding.

    The plan phase consumes the shared ``"houses"`` stream exactly as
    the historical serial builder did — the quota/shuffle draws of
    :meth:`HouseholdBuilder.plan_kinds` followed by one 64-bit seed per
    house — so house composition is byte-identical no matter how the
    houses are later partitioned across shards: every draw a house makes
    derives from its own ``seed``, never from a shared stream.
    """

    index: int
    kind: str
    seed: int


@dataclass(frozen=True, slots=True)
class HouseholdMixConfig:
    """Knobs controlling the house/resolver sampling.

    Defaults are calibrated against Table 1 of the paper.
    """

    forwarder_fraction: float = 0.165
    googledns_fraction: float = 0.076
    opendns_fraction: float = 0.253
    cloudflare_fraction: float = 0.038
    ttl_violator_fraction: float = 0.26
    overstay_median: float = 1200.0
    overstay_sigma: float = 1.8
    overstay_cap: float = 60000.0
    favorite_site_count: int = 3
    # Fraction of houses whose devices resolve over encrypted DNS (DoT):
    # their lookups vanish from the monitor's view (§3 what-if; the
    # paper's 2019 dataset predates broad deployment, hence 0 default).
    encrypted_dns_fraction: float = 0.0
    min_laptops: int = 1
    max_laptops: int = 3
    min_androids: int = 1
    max_androids: int = 2
    max_iot: int = 2
    p2p_fraction: float = 0.30

    def __post_init__(self) -> None:
        for label, value in (
            ("forwarder_fraction", self.forwarder_fraction),
            ("googledns_fraction", self.googledns_fraction),
            ("opendns_fraction", self.opendns_fraction),
            ("cloudflare_fraction", self.cloudflare_fraction),
            ("ttl_violator_fraction", self.ttl_violator_fraction),
            ("p2p_fraction", self.p2p_fraction),
            ("encrypted_dns_fraction", self.encrypted_dns_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{label} must be in [0, 1], got {value}")


class House:
    """One residence: an external IP, a NAT, and a set of devices."""

    def __init__(
        self,
        index: int,
        ip: str,
        capture: MonitorCapture,
        universe: NameUniverse,
        rng: random.Random,
    ):
        self.index = index
        self.ip = ip
        self.capture = capture
        self.universe = universe
        self.rng = rng
        self.devices: list[Device] = []
        self.resolver_platforms: set[str] = set()
        self.kind = "plain"
        # Sites/hosts the household keeps returning to; devices share
        # these, which is what gives a whole-house cache (§8) its value.
        self.favorite_sites: list = []
        self.favorite_apis: list = []
        self._next_nat_port = NAT_PORT_LOW + (index * 977) % (NAT_PORT_HIGH - NAT_PORT_LOW)

    def nat_port(self) -> int:
        """Allocate the next NAT source port (wraps within the NAT range)."""
        port = self._next_nat_port
        self._next_nat_port += 1
        if self._next_nat_port > NAT_PORT_HIGH:
            self._next_nat_port = NAT_PORT_LOW
        return port

    def devices_of_kind(self, kind: str) -> list[Device]:
        """All devices of the given kind."""
        return [device for device in self.devices if device.kind == kind]

    def __repr__(self) -> str:
        return f"House({self.index}, ip={self.ip!r}, kind={self.kind!r}, devices={len(self.devices)})"


def house_address(index: int) -> str:
    """The external (monitor-visible) IPv4 address of house *index*."""
    if index < 0 or index >= 200 * 200:
        raise WorkloadError(f"house index out of range: {index}")
    return f"10.77.{index // 200}.{10 + index % 200}"


class HouseholdBuilder:
    """Samples houses with devices, stub caches, and resolver choices."""

    def __init__(
        self,
        mix: HouseholdMixConfig,
        resolvers: dict[str, RecursiveResolver],
        universe: NameUniverse,
        capture: MonitorCapture,
        rng: random.Random,
        retry: RetryPolicy | None = None,
        stub_cache_capacity: int | None = None,
        stub_cache_policy: str = "lru",
        stub_stale_ttl_s: float = 0.0,
        stub_fd_budget: int | None = None,
        stub_max_queue_wait_s: float = 0.05,
    ):
        missing = {"local", "google", "opendns", "cloudflare"} - set(resolvers)
        if missing:
            raise WorkloadError(f"missing resolver platforms: {sorted(missing)}")
        self.mix = mix
        self.resolvers = resolvers
        self.universe = universe
        self.capture = capture
        self.rng = rng
        self.retry = retry if retry is not None else RetryPolicy()
        # Stub pressure knobs arrive as plain values (not a
        # PressureConfig) to keep the households module import-free of
        # the scenario layer, which imports this one.
        self.stub_cache_capacity = (
            stub_cache_capacity if stub_cache_capacity is not None else 4096
        )
        self.stub_cache_policy = stub_cache_policy
        self.stub_stale_ttl_s = stub_stale_ttl_s
        self.stub_fd_budget = stub_fd_budget
        self.stub_max_queue_wait_s = stub_max_queue_wait_s

    # -- stub cache policies ----------------------------------------------

    def _overstay_policy(self, rng: random.Random):
        """Per-device TTL-violation policy (see §5.2 of the paper)."""
        if rng.random() >= self.mix.ttl_violator_fraction:
            return 0.0
        median = self.mix.overstay_median
        sigma = self.mix.overstay_sigma
        cap = self.mix.overstay_cap
        violator_rng = random.Random(rng.getrandbits(64))

        def overstay(key: CacheKey) -> float:
            return min(cap, violator_rng.lognormvariate(math.log(median), sigma))

        return overstay

    def _make_stub(
        self,
        upstreams: list[tuple[RecursiveResolver, float]],
        rng: random.Random,
    ) -> StubResolver:
        cache = DnsCache(
            capacity=self.stub_cache_capacity,
            overstay=self._overstay_policy(rng),
            policy=self.stub_cache_policy,
            stale_ttl_s=self.stub_stale_ttl_s,
        )
        budget = (
            ConnectionBudget(self.stub_fd_budget, self.stub_max_queue_wait_s)
            if self.stub_fd_budget is not None
            else None
        )
        return StubResolver(
            upstreams=upstreams,
            cache=cache,
            rng=rng,
            retry=self.retry,
            connection_budget=budget,
        )

    # -- house construction -------------------------------------------------

    def plan_kinds(self, count: int) -> list[str]:
        """Assign house kinds by quota (stratified), shuffled.

        Independent draws make the rare kinds (Cloudflare at 3.8%) far
        too noisy at realistic house counts; quotas keep every scenario
        faithful to Table 1's platform mix.
        """
        return _plan_kinds(self.mix, self.rng, count)

    def build_house(self, index: int, kind: str | None = None) -> House:
        """Sample one complete house (of the given kind, or sampled)."""
        if kind is None:
            kind = self.plan_kinds(1)[0]
        return self.build_house_from_plan(
            HousePlan(index=index, kind=kind, seed=self.rng.getrandbits(64))
        )

    def build_house_from_plan(self, plan: HousePlan) -> House:
        """Build one complete house entirely from its fixed plan.

        Every draw comes from ``random.Random(plan.seed)``, so two
        builders (in different shard processes, with different capture
        sinks and resolver views) construct byte-identical houses from
        the same plan.
        """
        index = plan.index
        rng = random.Random(plan.seed)
        house = House(
            index=index,
            ip=house_address(index),
            capture=self.capture,
            universe=self.universe,
            rng=rng,
        )
        house.kind = plan.kind

        # Favorites are drawn uniformly, not by popularity: a household's
        # recurring niche sites are exactly the names a whole-house cache
        # (§8) saves from repeated authoritative resolution.
        house.favorite_sites = [
            rng.choice(self.universe.sites) for _ in range(self.mix.favorite_site_count)
        ]
        house.favorite_apis = [self.universe.pick_api_host(rng) for _ in range(2)]

        laptop_count = rng.randint(self.mix.min_laptops, self.mix.max_laptops)
        android_count = rng.randint(self.mix.min_androids, self.mix.max_androids)
        iot_count = rng.randint(0, self.mix.max_iot)
        has_tv = rng.random() < 0.6

        for i in range(laptop_count):
            device = self._build_device(house, f"laptop{i}", "laptop", rng)
            house.devices.append(device)
        for i in range(android_count):
            device = self._build_device(house, f"android{i}", "android", rng)
            house.devices.append(device)
        for i in range(iot_count):
            device = self._build_device(house, f"iot{i}", "iot", rng)
            house.devices.append(device)
        if has_tv:
            house.devices.append(self._build_device(house, "tv0", "tv", rng))
        if rng.random() < self.mix.p2p_fraction:
            house.devices.append(self._build_device(house, "p2p0", "p2p", rng))

        if rng.random() < self.mix.encrypted_dns_fraction:
            for device in house.devices:
                device.encrypted_dns = True

        house.resolver_platforms = self._house_platforms(house)
        return house

    def _build_device(self, house: House, name: str, kind: str, house_rng: random.Random) -> Device:
        rng = random.Random(house_rng.getrandbits(64))
        upstreams = self._upstreams_for(house.kind, kind)
        stub = self._make_stub(upstreams, rng)
        return Device(
            name=f"h{house.index}-{name}",
            house=house,
            stub=stub,
            rng=rng,
            kind=kind,
        )

    def _upstreams_for(self, house_kind: str, device_kind: str) -> list[tuple[RecursiveResolver, float]]:
        local = self.resolvers["local"]
        google = self.resolvers["google"]
        opendns = self.resolvers["opendns"]
        cloudflare = self.resolvers["cloudflare"]
        if house_kind == "forwarder":
            # An in-home forwarder intercepts every query.
            return [(local, 1.0)]
        if house_kind == "googledns":
            # The router's DHCP hands out Google DNS: the house never
            # touches the ISP resolvers (the 7.6% of Table 1 houses that
            # use Google but not the local platform).
            return [(google, 1.0)]
        if device_kind == "android":
            if house_kind == "cloudflare":
                return [(cloudflare, 0.70), (google, 0.25), (local, 0.05)]
            return [(google, 0.88), (local, 0.12)]
        if house_kind == "opendns":
            return [(opendns, 0.62), (local, 0.38)]
        if house_kind == "cloudflare":
            return [(cloudflare, 0.88), (local, 0.12)]
        return [(local, 1.0)]

    def _house_platforms(self, house: House) -> set[str]:
        platforms: set[str] = set()
        for device in house.devices:
            for resolver, weight in device.stub._upstreams:  # noqa: SLF001 - builder introspection
                if weight > 0:
                    platforms.add(resolver.platform)
        return platforms

    def build(self, count: int) -> list[House]:
        """Sample *count* houses with quota-assigned kinds."""
        plans = plan_houses(self.mix, self.rng, count)
        return [self.build_house_from_plan(plan) for plan in plans]


def _plan_kinds(mix: HouseholdMixConfig, rng: random.Random, count: int) -> list[str]:
    """The quota/shuffle kind assignment behind :meth:`plan_kinds`."""
    quotas = (
        ("forwarder", mix.forwarder_fraction),
        ("googledns", mix.googledns_fraction),
        ("cloudflare", mix.cloudflare_fraction),
        ("opendns", mix.opendns_fraction),
    )
    kinds: list[str] = []
    for kind, fraction in quotas:
        wanted = fraction * count
        n = int(wanted)
        if rng.random() < wanted - n:
            n += 1
        if kind == "cloudflare" and n == 0 and count >= 10:
            n = 1
        kinds.extend([kind] * n)
    kinds = kinds[:count]
    kinds.extend(["plain"] * (count - len(kinds)))
    rng.shuffle(kinds)
    return kinds


def plan_houses(mix: HouseholdMixConfig, rng: random.Random, count: int) -> list[HousePlan]:
    """Fix the composition of *count* houses before any of them is built.

    Consumes the shared stream in exactly the order the serial builder
    historically did — the kind quota draws, then one 64-bit seed per
    house in index order — and freezes the result into
    :class:`HousePlan` entries that shard workers can build from
    independently.
    """
    if count <= 0:
        raise WorkloadError(f"house count must be positive, got {count}")
    kinds = _plan_kinds(mix, rng, count)
    return [
        HousePlan(index=index, kind=kind, seed=rng.getrandbits(64))
        for index, kind in enumerate(kinds)
    ]
