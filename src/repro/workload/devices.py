"""Devices: the in-home endpoints that generate lookups and connections.

A :class:`Device` owns a stub resolver (with its own local cache, which
may overstay TTLs) and exposes the two primitives application models
build on:

* :meth:`Device.resolve` — resolve a hostname the way an OS stub does:
  local cache first, then the configured upstream resolver. Wire-visible
  transactions are recorded at the monitor.
* :meth:`Device.open_connections` — open one or more application
  connections to a resolved host, recording Zeek-style connection
  summaries (and ground-truth class annotations) at the monitor.

Devices sit behind their house's NAT: the monitor sees the house IP and
a NAT-allocated source port, never the device — matching the paper's
vantage point (§3).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.dns.cache import cache_key
from repro.dns.resolver import StubLookup, StubResolver
from repro.monitor.records import DnsAnswer, GroundTruth, Proto, TruthClass
from repro.workload.namespace import HostProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.workload.households import House

_CONN_SETUP_MEDIAN = 0.004
_CONN_SETUP_SIGMA = 0.8
_LN_CONN_SETUP_MEDIAN = math.log(_CONN_SETUP_MEDIAN)


@dataclass(frozen=True, slots=True)
class Resolution:
    """Outcome of a device-level name resolution.

    ``hard_failure`` distinguishes a lookup that failed at the transport
    level (timeout after the full retry budget, or SERVFAIL) from a
    definitive NXDOMAIN: applications may retry or fall back to a cached
    address after the former, never after the latter.
    """

    hostname: str
    addresses: tuple[str, ...]
    completed_at: float
    truth_class: TruthClass
    dns_uid: str | None
    used_expired_record: bool
    resolver_platform: str | None
    wire_visible: bool
    hard_failure: bool = False

    @property
    def failed(self) -> bool:
        """True when no address was obtained."""
        return not self.addresses


class Device:
    """One endpoint inside a house."""

    def __init__(
        self,
        name: str,
        house: "House",
        stub: StubResolver,
        rng: random.Random,
        kind: str = "laptop",
    ):
        self.name = name
        self.house = house
        self.stub = stub
        self.rng = rng
        self.kind = kind
        # The platform whose resolver most recently answered each host;
        # drives CDN edge choice for subsequent connections.
        self._platform_for_host: dict[str, str] = {}
        # Fraction of HTTPS connections carried over QUIC (UDP 443); the
        # paper treats QUIC as UDP "connections" (§3, footnote 3).
        self.quic_fraction = 0.12
        # When True the device resolves over DNS-over-TLS: its lookups
        # are invisible to the passive monitor (the §3 what-if).
        self.encrypted_dns = False
        self.lookups_performed = 0
        self.connections_opened = 0

    def __repr__(self) -> str:
        return f"Device({self.name!r}, kind={self.kind!r})"

    # -- resolution -----------------------------------------------------

    def resolve(self, hostname: str, now: float) -> Resolution:
        """Resolve *hostname* at *now*, recording any wire transaction."""
        # Peek before the lookup: a cache probe that finds the entry
        # expired evicts it, so the entry must be captured now to be
        # available for the connect-by-cached-address fallback. Only the
        # (cheap) entry reference is taken here; its address tuple is
        # materialized in the rare hard-failure case that needs it.
        stale_entry = self.stub.cache.peek(cache_key(hostname))
        lookup = self.stub.lookup(hostname, now, rng=self.rng)
        self.lookups_performed += 1
        if lookup.network_transaction:
            resolution = self._record_wire_lookup(hostname, now, lookup)
            if resolution.hard_failure:
                stale_addresses = (
                    tuple(rr.address for rr in stale_entry.records if rr.is_address())
                    if stale_entry is not None
                    else ()
                )
                stale = self._stale_fallback(resolution, stale_addresses)
                if stale is not None:
                    return stale
            return resolution
        if lookup.outcome is not None and lookup.outcome.resource_exhausted:
            # The stub shed the lookup on-device (fd budget exhausted):
            # nothing went out on the wire, so the monitor sees nothing.
            # Like any hard failure, the device may still ride a stale
            # cached address (§5.2's connect-by-cached-address).
            shed = Resolution(
                hostname,
                (),
                now,
                TruthClass.RESOLUTION,
                None,
                False,
                self._platform_for_host.get(hostname),
                False,
                True,
            )
            stale_addresses = (
                tuple(rr.address for rr in stale_entry.records if rr.is_address())
                if stale_entry is not None
                else ()
            )
            fallback = self._stale_fallback(shed, stale_addresses)
            return fallback if fallback is not None else shed
        cache_result = lookup.cache_result
        assert cache_result is not None
        truth = TruthClass.PREFETCHED if cache_result.first_use else TruthClass.LOCAL_CACHE
        # Positional construction (field order per Resolution): this and
        # the wire-path return below run once per device resolution.
        return Resolution(
            hostname,
            lookup.addresses(),
            now,
            truth,
            None,
            cache_result.expired,
            self._platform_for_host.get(hostname),
            False,
        )

    def _record_wire_lookup(self, hostname: str, now: float, lookup: StubLookup) -> Resolution:
        outcome = lookup.outcome
        assert outcome is not None and lookup.resolver_platform is not None
        self._platform_for_host[hostname] = lookup.resolver_platform
        truth = TruthClass.SHARED_CACHE if outcome.cache_hit else TruthClass.RESOLUTION
        if self.encrypted_dns:
            # DNS-over-TLS: the monitor sees only an opaque TCP
            # connection to port 853 — no query, no answers (§3: broad
            # encrypted-DNS use would make the paper's study impossible).
            self.house.capture.record_conn(
                ts=now,
                orig_h=self.house.ip,
                orig_p=self.house.nat_port(),
                resp_h=lookup.resolver_address or "0.0.0.0",
                resp_p=853,
                proto=Proto.TCP,
                duration=lookup.duration_s,
                orig_bytes=int(self.rng.uniform(200, 500)),
                resp_bytes=int(self.rng.uniform(300, 900)),
                service="dot",
                truth=GroundTruth(conn_uid="", truth_class=TruthClass.NO_DNS),
            )
            record_uid = None
        else:
            answers = tuple(
                [
                    DnsAnswer(rr.address, float(rr.ttl), rr.rtype.name)
                    for rr in lookup.records
                    if rr.is_address()
                ]
            )
            record = self.house.capture.record_dns(
                now,
                self.house.ip,
                self.house.nat_port(),
                lookup.resolver_address or "0.0.0.0",
                hostname,
                lookup.duration_s,
                answers,
                "A",
                outcome.rcode_name,
            )
            record_uid = record.uid
        return Resolution(
            hostname,
            lookup.addresses(),
            now + lookup.duration_s,
            truth,
            record_uid,
            False,
            lookup.resolver_platform,
            not self.encrypted_dns,
            outcome.failed,
        )

    def _cached_addresses(self, hostname: str) -> tuple[str, ...]:
        """Addresses currently held (possibly expired) in the local cache."""
        entry = self.stub.cache.peek(cache_key(hostname))
        if entry is None:
            return ()
        return tuple(rr.address for rr in entry.records if rr.is_address())

    def _stale_fallback(
        self, resolution: Resolution, addresses: tuple[str, ...]
    ) -> Resolution | None:
        """Connect-by-cached-address after a hard lookup failure.

        Real stacks (and many applications) keep using the last known
        address when a refresh lookup times out or SERVFAILs. The wire
        already shows the failed transaction; the connections that follow
        ride the expired local-cache entry (ground truth LC, with the
        expired-record marker §5.2 measures).
        """
        if not addresses:
            return None
        return Resolution(
            hostname=resolution.hostname,
            addresses=addresses,
            completed_at=resolution.completed_at,
            truth_class=TruthClass.LOCAL_CACHE,
            dns_uid=resolution.dns_uid,
            used_expired_record=True,
            resolver_platform=resolution.resolver_platform,
            wire_visible=resolution.wire_visible,
            hard_failure=True,
        )

    def prefetch(self, hostname: str, now: float) -> Resolution | None:
        """Speculatively resolve *hostname* (browser link prefetch, §5.2).

        Returns None when the name is already in the local cache — real
        prefetchers skip those. A cache probe without a use must not
        disturb first-use accounting, so we peek first.
        """
        entry = self.stub.cache.peek(cache_key(hostname))
        if entry is not None and not entry.is_expired(now):
            return None
        return self.resolve(hostname, now)

    # -- connections ------------------------------------------------------

    def open_connections(
        self,
        host: HostProfile,
        resolution: Resolution,
        count: int = 1,
        size_scale: float = 1.0,
        parallel: bool = True,
        service: str | None = None,
        port: int = 443,
        proto: Proto = Proto.TCP,
    ) -> float:
        """Open *count* connections to *host* using *resolution*.

        ``parallel`` connections all start within a few tens of
        milliseconds of the resolution completing (a browser's parallel
        fetch); sequential ones spread over the following seconds.
        Returns the time the last connection ends.
        """
        if resolution.failed:
            return resolution.completed_at
        if resolution.wire_visible:
            # The fresh lookup is being consumed right now: mark its cache
            # entry used, so the *next* cache hit counts as re-use (LC
            # truth) rather than first use of a speculative lookup (P).
            self._mark_entry_used(resolution.hostname, resolution.completed_at)
        last_end = resolution.completed_at
        # OS/application processing between the DNS answer landing and the
        # SYN leaving: a few milliseconds, occasionally tens (this is the
        # sub-knee mass of the paper's Figure 1).
        setup = self.rng.lognormvariate(_LN_CONN_SETUP_MEDIAN, _CONN_SETUP_SIGMA)
        start = resolution.completed_at + min(setup, 0.03)
        for index in range(count):
            if index > 0:
                if parallel:
                    start += self.rng.uniform(0.002, 0.022)
                else:
                    start += self.rng.uniform(0.3, 4.0)
            if index == 0:
                truth_class = resolution.truth_class
            elif parallel and resolution.wire_visible:
                # Launched in the same burst as a wire lookup: the whole
                # batch waited on that lookup, so it shares the blocked
                # class (SC/R).
                truth_class = resolution.truth_class
            else:
                # Follow-on connections ride the now-populated local cache.
                truth_class = TruthClass.LOCAL_CACHE
            end = self._open_single(
                host, resolution, start, size_scale, truth_class, service, port, proto
            )
            last_end = max(last_end, end)
        return last_end

    def _open_single(
        self,
        host: HostProfile,
        resolution: Resolution,
        start: float,
        size_scale: float,
        truth_class: TruthClass,
        service: str | None,
        port: int,
        proto: Proto,
    ) -> float:
        rng = self.rng
        house = self.house
        address = rng.choice(resolution.addresses)
        if proto == Proto.TCP and port == 443 and rng.random() < self.quic_fraction:
            proto = Proto.UDP
        size = max(200.0, rng.lognormvariate(_ln(host.typical_bytes * size_scale), 0.9))
        duration = self._transfer_duration(host, resolution.resolver_platform, size)
        request_bytes = int(rng.uniform(300, 1800))
        truth = GroundTruth(
            "",  # conn_uid, assigned by the capture
            truth_class,
            host.hostname,
            resolution.dns_uid,
            resolution.used_expired_record,
            resolution.resolver_platform,
        )
        house.capture.record_conn(
            start,
            house.ip,
            house.nat_port(),
            address,
            port,
            proto,
            duration,
            request_bytes,
            int(size),
            service if service is not None else ("ssl" if port == 443 else "http"),
            "SF",
            truth,
        )
        self.connections_opened += 1
        return start + duration

    def _transfer_duration(self, host: HostProfile, platform: str | None, size: float) -> float:
        """Connection lifetime: RTT floor plus paced transfer time.

        The edge the CDN mapped this platform's clients to sets the raw
        transfer rate (§7). Real residential connections are not one
        back-to-back blast, though: persistent connections carry objects
        over time (keep-alive, chunking, streaming pacing), so the
        wire-level lifetime stretches the raw transfer by a pacing
        factor. This yields seconds-long durations — the regime in which
        the paper finds DNS contributes >1% to only ~20% of blocked
        transactions (§6) — while keeping measured throughput
        (bytes/duration) ordered by edge quality (Figure 3, bottom).
        """
        factor = 1.0
        if host.cdn_org is not None and platform is not None:
            edge = self.house.universe.cdn_edge(host.cdn_org, platform)
            factor = edge.sample_factor(self.rng, size)
        throughput = host.base_throughput * factor * self.rng.lognormvariate(0.0, 0.55)
        rtt_floor = self.rng.uniform(0.02, 0.09)
        # Small transfers (beacons, checks) are one-shot; large ones ride
        # persistent connections that stay open far longer than the raw
        # transfer (keep-alive, chunked delivery).
        pacing_median = 45.0 + 425.0 * min(1.0, size / 2e5)
        pacing = self.rng.lognormvariate(_ln(pacing_median), 1.2)
        return rtt_floor + pacing * size / max(1e4, throughput)

    def _mark_entry_used(self, hostname: str, now: float) -> None:
        """Record one use of the local cache entry for *hostname*."""
        entry = self.stub.cache.peek(cache_key(hostname))
        if entry is not None:
            entry.uses += 1
            entry.last_used = now

    def followup_connections(
        self,
        host: HostProfile,
        resolution: Resolution,
        count: int,
        delay_min_s: float = 0.5,
        delay_max_s: float = 8.0,
        size_scale: float = 1.0,
        port: int = 443,
    ) -> None:
        """Later connections riding the same (now locally cached) mapping.

        Keep-alive re-opens, lazy-loaded objects, or a second tab: they
        start seconds after the lookup, so they never block on DNS
        (ground truth LC).
        """
        if resolution.failed:
            return
        start = resolution.completed_at
        for _ in range(count):
            start += self.rng.uniform(delay_min_s, delay_max_s)
            self._open_single(
                host,
                resolution,
                start,
                size_scale,
                TruthClass.LOCAL_CACHE,
                None,
                port,
                Proto.TCP,
            )

    def connect_hardcoded(
        self,
        now: float,
        address: str,
        port: int,
        proto: Proto,
        duration_s: float,
        orig_bytes: int,
        resp_bytes: int,
        service: str = "-",
        conn_state: str = "SF",
    ) -> None:
        """A connection to a hard-coded IP: no DNS involvement (class N)."""
        truth = GroundTruth(conn_uid="", truth_class=TruthClass.NO_DNS)
        self.house.capture.record_conn(
            ts=now,
            orig_h=self.house.ip,
            orig_p=self.house.nat_port(),
            resp_h=address,
            resp_p=port,
            proto=proto,
            duration=duration_s,
            orig_bytes=orig_bytes,
            resp_bytes=resp_bytes,
            service=service,
            conn_state=conn_state,
            truth=truth,
        )
        self.connections_opened += 1


#: Memo for :func:`_ln`: the arguments are host-profile byte medians
#: (a bounded set per universe), each worth one ``log`` per process.
#: Reset past the cap so many distinct universes in one long-lived
#: process cannot grow it without bound (pure function; a reset only
#: costs recomputed logs).
_LN_CACHE_MAX = 4096
_LN_CACHE: dict[float, float] = {}


def _ln(x: float) -> float:
    value = _LN_CACHE.get(x)
    if value is None:
        value = math.log(max(1e-9, x))
        if len(_LN_CACHE) >= _LN_CACHE_MAX:
            _LN_CACHE.clear()
        _LN_CACHE[x] = value
    return value
