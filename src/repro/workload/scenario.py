"""Scenario configuration: every knob of the synthetic workload.

A :class:`ScenarioConfig` fully determines a synthetic trace (together
with its seed): the same config always regenerates the same logs.
Presets provide the paper-shaped default (:func:`default_scenario`) and
a small fast variant for unit tests (:func:`smoke_scenario`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.dns.cache import EVICTION_POLICIES
from repro.errors import WorkloadError
from repro.simulation.faults import FaultConfig
from repro.workload.apps import BrowsingConfig
from repro.workload.households import HouseholdMixConfig


@dataclass(frozen=True, slots=True)
class PressureConfig:
    """Resolver/cache pressure knobs (all off by default).

    With the defaults nothing changes: caches keep their historical
    capacities and LRU policy, no connection budgets exist, and no flash
    crowds fire — traces are byte-identical to pre-pressure builds.

    ``*_cache_capacity`` bounds the respective cache (``None`` keeps the
    existing default); ``*_cache_policy`` picks one of
    :data:`repro.dns.cache.EVICTION_POLICIES`; ``*_stale_ttl_s`` sets
    the RFC 8767 staleness budget for ``"serve-stale"`` caches (``0``
    selects the RFC default). ``*_fd_budget`` caps concurrent
    connections (``None`` = unbounded), with arrivals queueing up to
    ``*_max_queue_wait_s`` before being shed as REFUSED.

    The ``resolver_*`` capacities and budgets describe the *shared*
    platform. Since the per-house generation decomposition, every house
    simulates against its own view of each platform, so a platform-wide
    limit is split into per-house slices of ``ceil(value / houses)``
    entries/slots (see ``TrafficGenerator._sliced``). The aggregate
    limit is preserved up to ceiling rounding, and the slicing — unlike
    a shared mutable budget — is independent of the shard/worker split,
    which is what keeps pressure scenarios byte-identical across shard
    counts. ``stub_*`` knobs are per device and unaffected.

    Flash crowds model synchronized demand spikes (a game patch, a live
    event): Poisson windows of ``flash_crowd_duration_s`` during which
    every device runs ``flash_crowd_intensity`` extra browsing-session
    arrivals, thrashing caches and connection budgets at once.
    """

    stub_cache_capacity: int | None = None
    stub_cache_policy: str = "lru"
    stub_stale_ttl_s: float = 0.0
    stub_fd_budget: int | None = None
    stub_max_queue_wait_s: float = 0.05
    resolver_cache_capacity: int | None = None
    resolver_cache_policy: str = "lru"
    resolver_stale_ttl_s: float = 0.0
    resolver_fd_budget: int | None = None
    resolver_max_queue_wait_s: float = 0.25
    flash_crowd_rate_per_hour: float = 0.0
    flash_crowd_duration_s: float = 300.0
    flash_crowd_intensity: float = 5.0

    def __post_init__(self) -> None:
        for label, policy in (
            ("stub_cache_policy", self.stub_cache_policy),
            ("resolver_cache_policy", self.resolver_cache_policy),
        ):
            if policy not in EVICTION_POLICIES:
                raise WorkloadError(
                    f"{label} must be one of {EVICTION_POLICIES}, got {policy!r}"
                )
        for label, value in (
            ("stub_cache_capacity", self.stub_cache_capacity),
            ("stub_fd_budget", self.stub_fd_budget),
            ("resolver_cache_capacity", self.resolver_cache_capacity),
            ("resolver_fd_budget", self.resolver_fd_budget),
        ):
            if value is not None and value <= 0:
                raise WorkloadError(f"{label} must be positive, got {value}")
        for label, value in (
            ("stub_stale_ttl_s", self.stub_stale_ttl_s),
            ("stub_max_queue_wait_s", self.stub_max_queue_wait_s),
            ("resolver_stale_ttl_s", self.resolver_stale_ttl_s),
            ("resolver_max_queue_wait_s", self.resolver_max_queue_wait_s),
            ("flash_crowd_rate_per_hour", self.flash_crowd_rate_per_hour),
        ):
            if value < 0:
                raise WorkloadError(f"{label} cannot be negative, got {value}")
        if self.flash_crowd_duration_s <= 0:
            raise WorkloadError(
                f"flash_crowd_duration_s must be positive, got {self.flash_crowd_duration_s}"
            )
        if self.flash_crowd_intensity < 1.0:
            raise WorkloadError(
                f"flash_crowd_intensity must be >= 1, got {self.flash_crowd_intensity}"
            )

    @property
    def enabled(self) -> bool:
        """Does this configuration change anything at all?"""
        return (
            self.stub_cache_capacity is not None
            or self.stub_cache_policy != "lru"
            or self.stub_fd_budget is not None
            or self.resolver_cache_capacity is not None
            or self.resolver_cache_policy != "lru"
            or self.resolver_fd_budget is not None
            or self.flash_crowd_rate_per_hour > 0
        )


@dataclass(frozen=True, slots=True)
class UniverseConfig:
    """Size of the hostname universe."""

    site_count: int = 200
    cdn_host_count: int = 18
    ads_host_count: int = 12
    analytics_host_count: int = 6
    api_host_count: int = 15
    video_host_count: int = 8
    zipf_exponent: float = 0.9


@dataclass(frozen=True, slots=True)
class AppRates:
    """Per-device-kind application activity levels."""

    laptop_browsing_scale: float = 1.0
    android_browsing_scale: float = 0.14
    laptop_video_sessions_per_hour: float = 0.10
    tv_video_sessions_per_hour: float = 0.35
    laptop_api_probability: float = 0.60
    android_api_probability: float = 0.50
    connectivity_check_median_period: float = 450.0
    p2p_bursts_per_hour: float = 11.0
    quic_fraction: float = 0.12


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """A complete synthetic-workload scenario."""

    seed: int = 1
    houses: int = 30
    duration: float = 86400.0
    warmup: float = 0.0
    universe: UniverseConfig = field(default_factory=UniverseConfig)
    mix: HouseholdMixConfig = field(default_factory=HouseholdMixConfig)
    browsing: BrowsingConfig = field(default_factory=BrowsingConfig)
    rates: AppRates = field(default_factory=AppRates)
    # All-zero by default: the fault plan is never consulted and traces
    # are byte-identical to pre-fault-model builds.
    faults: FaultConfig = field(default_factory=FaultConfig)
    # All-off by default: caches stay unpressured and no budgets exist,
    # keeping traces byte-identical to pre-pressure builds.
    pressure: PressureConfig = field(default_factory=PressureConfig)

    def __post_init__(self) -> None:
        if self.houses <= 0:
            raise WorkloadError(f"houses must be positive, got {self.houses}")
        if self.duration <= 0:
            raise WorkloadError(f"duration must be positive, got {self.duration}")
        if self.warmup < 0:
            raise WorkloadError(f"warmup cannot be negative, got {self.warmup}")

    def scaled(self, houses: int | None = None, duration: float | None = None) -> "ScenarioConfig":
        """A copy with a different size (same behaviour knobs)."""
        return replace(
            self,
            houses=houses if houses is not None else self.houses,
            duration=duration if duration is not None else self.duration,
        )


def default_scenario(seed: int = 1) -> ScenarioConfig:
    """The paper-shaped default: 30 houses, one simulated day."""
    return ScenarioConfig(seed=seed)


def smoke_scenario(seed: int = 1) -> ScenarioConfig:
    """A small, fast scenario for unit tests (a few houses, 2 hours)."""
    return ScenarioConfig(
        seed=seed,
        houses=6,
        duration=7200.0,
        universe=UniverseConfig(site_count=40, cdn_host_count=9, ads_host_count=6),
    )


def benchmark_scenario(seed: int = 1) -> ScenarioConfig:
    """The scenario used by the benchmark harness (see benchmarks/)."""
    return ScenarioConfig(seed=seed, houses=24, duration=43200.0)
