"""Scenario configuration: every knob of the synthetic workload.

A :class:`ScenarioConfig` fully determines a synthetic trace (together
with its seed): the same config always regenerates the same logs.
Presets provide the paper-shaped default (:func:`default_scenario`) and
a small fast variant for unit tests (:func:`smoke_scenario`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import WorkloadError
from repro.simulation.faults import FaultConfig
from repro.workload.apps import BrowsingConfig
from repro.workload.households import HouseholdMixConfig


@dataclass(frozen=True, slots=True)
class UniverseConfig:
    """Size of the hostname universe."""

    site_count: int = 200
    cdn_host_count: int = 18
    ads_host_count: int = 12
    analytics_host_count: int = 6
    api_host_count: int = 15
    video_host_count: int = 8
    zipf_exponent: float = 0.9


@dataclass(frozen=True, slots=True)
class AppRates:
    """Per-device-kind application activity levels."""

    laptop_browsing_scale: float = 1.0
    android_browsing_scale: float = 0.14
    laptop_video_sessions_per_hour: float = 0.10
    tv_video_sessions_per_hour: float = 0.35
    laptop_api_probability: float = 0.60
    android_api_probability: float = 0.50
    connectivity_check_median_period: float = 450.0
    p2p_bursts_per_hour: float = 11.0
    quic_fraction: float = 0.12


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """A complete synthetic-workload scenario."""

    seed: int = 1
    houses: int = 30
    duration: float = 86400.0
    warmup: float = 0.0
    universe: UniverseConfig = field(default_factory=UniverseConfig)
    mix: HouseholdMixConfig = field(default_factory=HouseholdMixConfig)
    browsing: BrowsingConfig = field(default_factory=BrowsingConfig)
    rates: AppRates = field(default_factory=AppRates)
    # All-zero by default: the fault plan is never consulted and traces
    # are byte-identical to pre-fault-model builds.
    faults: FaultConfig = field(default_factory=FaultConfig)

    def __post_init__(self) -> None:
        if self.houses <= 0:
            raise WorkloadError(f"houses must be positive, got {self.houses}")
        if self.duration <= 0:
            raise WorkloadError(f"duration must be positive, got {self.duration}")
        if self.warmup < 0:
            raise WorkloadError(f"warmup cannot be negative, got {self.warmup}")

    def scaled(self, houses: int | None = None, duration: float | None = None) -> "ScenarioConfig":
        """A copy with a different size (same behaviour knobs)."""
        return replace(
            self,
            houses=houses if houses is not None else self.houses,
            duration=duration if duration is not None else self.duration,
        )


def default_scenario(seed: int = 1) -> ScenarioConfig:
    """The paper-shaped default: 30 houses, one simulated day."""
    return ScenarioConfig(seed=seed)


def smoke_scenario(seed: int = 1) -> ScenarioConfig:
    """A small, fast scenario for unit tests (a few houses, 2 hours)."""
    return ScenarioConfig(
        seed=seed,
        houses=6,
        duration=7200.0,
        universe=UniverseConfig(site_count=40, cdn_host_count=9, ads_host_count=6),
    )


def benchmark_scenario(seed: int = 1) -> ScenarioConfig:
    """The scenario used by the benchmark harness (see benchmarks/)."""
    return ScenarioConfig(seed=seed, houses=24, duration=43200.0)
