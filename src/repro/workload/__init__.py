"""Synthetic residential ISP workload: the stand-in for the paper's CCZ traces."""

from repro.workload.apps import (
    ApiPollingModel,
    BrowsingConfig,
    ConnectivityCheckModel,
    IoTHardcodedModel,
    P2PModel,
    VideoStreamingModel,
    WebBrowsingModel,
    diurnal_factor,
)
from repro.workload.devices import Device, Resolution
from repro.workload.generate import TrafficGenerator, generate_trace
from repro.workload.households import (
    House,
    HouseholdBuilder,
    HouseholdMixConfig,
    house_address,
)
from repro.workload.namespace import (
    CONNECTIVITY_CHECK_HOST,
    HostProfile,
    IpAllocator,
    NameUniverse,
    SiteProfile,
)
from repro.workload.scenario import (
    AppRates,
    ScenarioConfig,
    UniverseConfig,
    benchmark_scenario,
    default_scenario,
    smoke_scenario,
)

__all__ = [
    "ApiPollingModel",
    "AppRates",
    "BrowsingConfig",
    "CONNECTIVITY_CHECK_HOST",
    "ConnectivityCheckModel",
    "Device",
    "HostProfile",
    "House",
    "HouseholdBuilder",
    "HouseholdMixConfig",
    "IoTHardcodedModel",
    "IpAllocator",
    "NameUniverse",
    "P2PModel",
    "Resolution",
    "ScenarioConfig",
    "SiteProfile",
    "TrafficGenerator",
    "UniverseConfig",
    "VideoStreamingModel",
    "WebBrowsingModel",
    "benchmark_scenario",
    "default_scenario",
    "diurnal_factor",
    "generate_trace",
    "house_address",
    "smoke_scenario",
]
