"""Application models: the traffic sources running on devices.

Each model schedules events on the simulation engine and uses the
device's ``resolve``/``open_connections`` primitives. Together they
produce the behavioural ingredients the paper measures:

* :class:`WebBrowsingModel` — sessions of page visits with parallel
  object fetches, shared third-party subresources (the local-cache mass),
  link prefetching (the `P` class and the unused-lookup economics of
  §5.2), and clicks on prefetched links.
* :class:`ApiPollingModel` — periodic polls against short-TTL API hosts
  (repeat lookups, shared-cache hits).
* :class:`VideoStreamingModel` — long, fat transfers that dilute DNS'
  relative contribution (§6).
* :class:`ConnectivityCheckModel` — Android captive-portal probes of
  ``connectivitycheck.gstatic.com`` via Google's resolver, the §7
  artifact that skews Google's throughput line.
* :class:`P2PModel` — high-port peer traffic with no DNS (class `N`).
* :class:`IoTHardcodedModel` — NTP/alarm traffic to hard-coded IPs
  (the §5.1 anatomy: retired NTP server, Ooma, AlarmNet).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.monitor.records import Proto
from repro.simulation.engine import SimulationEngine
from repro.workload.devices import Device
from repro.workload.namespace import (
    ALARMNET_SERVERS,
    CONNECTIVITY_CHECK_HOST,
    OOMA_NTP_SERVERS,
    RETIRED_NTP_SERVER,
    NameUniverse,
    SiteProfile,
)

SECONDS_PER_DAY = 86400.0


def diurnal_factor(t: float) -> float:
    """Activity multiplier over the day: quiet nights, busy evenings."""
    # Peak around 20:00 local, trough around 08:00.
    phase = 2.0 * math.pi * ((t % SECONDS_PER_DAY) / SECONDS_PER_DAY - 0.58)
    return 0.35 + 0.65 * (1.0 + math.sin(phase)) / 2.0


def schedule_poisson(
    engine: SimulationEngine,
    rng: random.Random,
    peak_rate_per_hour: float,
    start: float,
    end: float,
    callback,
    diurnal: bool = True,
) -> int:
    """Schedule Poisson events, thinned by the diurnal curve.

    Returns the number of events scheduled.
    """
    if peak_rate_per_hour <= 0:
        return 0
    rate_per_second = peak_rate_per_hour / 3600.0
    scheduled = 0
    t = start
    while True:
        t += rng.expovariate(rate_per_second)
        if t >= end:
            return scheduled
        if diurnal and rng.random() > diurnal_factor(t):
            continue
        engine.schedule_at(t, _bind(callback, t))
        scheduled += 1


def _bind(callback, when: float):
    def fire() -> None:
        callback(when)

    return fire


@dataclass(frozen=True, slots=True)
class BrowsingConfig:
    """Knobs of the web-browsing model (defaults calibrated to the paper)."""

    sessions_per_hour: float = 1.1
    pages_per_session_mean: float = 4.0
    interpage_median: float = 150.0
    interpage_sigma: float = 1.0
    primary_conns_min: int = 1
    primary_conns_max: int = 2
    subresources_min: int = 3
    subresources_max: int = 7
    prefetch_links_min: int = 4
    prefetch_links_max: int = 6
    click_probability: float = 0.95
    click_delay_median_s: float = 260.0
    click_delay_sigma: float = 1.1
    favorite_probability: float = 0.75


class WebBrowsingModel:
    """Sessions of page visits on one device."""

    def __init__(self, universe: NameUniverse, config: BrowsingConfig | None = None, rate_scale: float = 1.0):
        self.universe = universe
        self.config = config if config is not None else BrowsingConfig()
        self.rate_scale = rate_scale

    def schedule(
        self,
        device: Device,
        engine: SimulationEngine,
        start: float,
        end: float,
        rng: random.Random | None = None,
        diurnal: bool = True,
    ) -> None:
        """Schedule this device's browsing sessions over [start, end).

        ``rng`` overrides the arrival stream (the sessions themselves
        still draw from the device's stream); flash-crowd windows use a
        derived stream here so enabling them never perturbs the
        device's base schedule. ``diurnal=False`` skips the
        time-of-day thinning — a flash crowd is event-driven, not
        circadian.
        """
        schedule_poisson(
            engine,
            rng if rng is not None else device.rng,
            self.config.sessions_per_hour * self.rate_scale,
            start,
            end,
            lambda when: self._run_session(device, engine, when, end),
            diurnal=diurnal,
        )

    # -- session/page machinery -------------------------------------------

    def _run_session(self, device: Device, engine: SimulationEngine, when: float, end: float) -> None:
        favorites = device.house.favorite_sites
        if favorites and device.rng.random() < self.config.favorite_probability:
            site = device.rng.choice(favorites)
        else:
            site = self.universe.pick_site(device.rng)
        pages = 1 + _geometric(device.rng, self.config.pages_per_session_mean)
        self._visit_page(device, engine, site, when, end, pages_left=pages)

    def _visit_page(
        self,
        device: Device,
        engine: SimulationEngine,
        site: SiteProfile,
        when: float,
        end: float,
        pages_left: int,
        click_depth: int = 0,
        retried: bool = False,
    ) -> None:
        config = self.config
        rng = device.rng
        resolution = device.resolve(site.primary.hostname, when)
        if resolution.failed and resolution.hard_failure and not retried:
            # The lookup timed out or SERVFAILed with nothing cached to
            # fall back on: the user (or browser) reloads the page once a
            # few seconds later. A definitive NXDOMAIN is never retried.
            retry_at = resolution.completed_at + rng.uniform(1.0, 4.0)
            if retry_at < end:
                engine.schedule_at(
                    retry_at,
                    _bind(
                        lambda when2: self._visit_page(
                            device,
                            engine,
                            site,
                            when2,
                            end,
                            pages_left=pages_left,
                            click_depth=click_depth,
                            retried=True,
                        ),
                        retry_at,
                    ),
                )
            return
        if not resolution.failed:
            primary_conns = rng.randint(config.primary_conns_min, config.primary_conns_max)
            device.open_connections(site.primary, resolution, count=primary_conns, parallel=True)
            # Lazy-loaded objects and keep-alive re-opens arrive seconds
            # later off the now-cached mapping.
            if rng.random() < 0.55:
                device.followup_connections(
                    site.primary, resolution, count=1, delay_min_s=10.0, delay_max_s=150.0
                )
        # The parser discovers subresources shortly after the primary fetch.
        parse_at = resolution.completed_at + rng.uniform(0.08, 0.6)
        wanted = rng.randint(config.subresources_min, config.subresources_max)
        chosen = list(site.subresources)
        rng.shuffle(chosen)
        for host in chosen[:wanted]:
            sub_resolution = device.resolve(host.hostname, parse_at)
            if not sub_resolution.failed:
                device.open_connections(
                    host,
                    sub_resolution,
                    count=2 if rng.random() < 0.3 else 1,
                    parallel=True,
                )
                if rng.random() < 0.30:
                    device.followup_connections(
                        host, sub_resolution, count=1, delay_min_s=10.0, delay_max_s=150.0
                    )
            parse_at = max(parse_at + rng.uniform(0.01, 0.2), sub_resolution.completed_at)
        # Speculative DNS prefetching of outbound links (§5.2).
        link_count = rng.randint(config.prefetch_links_min, config.prefetch_links_max)
        links = self.universe.pick_link_targets(rng, link_count, exclude=site.primary.hostname)
        prefetch_at = parse_at + rng.uniform(0.05, 0.4)
        for link in links:
            device.prefetch(link.primary.hostname, prefetch_at)
        # Maybe click one prefetched link, starting a page visit there.
        # Click chains are depth-limited to keep the per-session branching
        # process subcritical (a session must not spawn sessions forever).
        if links and click_depth < 4 and rng.random() < config.click_probability:
            target = rng.choice(links)
            delay = rng.lognormvariate(math.log(config.click_delay_median_s), config.click_delay_sigma)
            click_at = prefetch_at + delay
            if click_at < end:
                engine.schedule_at(
                    click_at,
                    _bind(
                        lambda when2, target=target: self._visit_page(
                            device,
                            engine,
                            target,
                            when2,
                            end,
                            pages_left=1,
                            click_depth=click_depth + 1,
                        ),
                        click_at,
                    ),
                )
        # Next page of this session, on the same site.
        if pages_left > 1:
            gap = rng.lognormvariate(math.log(config.interpage_median), config.interpage_sigma)
            next_at = when + gap
            if next_at < end:
                engine.schedule_at(
                    next_at,
                    _bind(
                        lambda when2: self._visit_page(
                            device,
                            engine,
                            site,
                            when2,
                            end,
                            pages_left=pages_left - 1,
                            click_depth=click_depth,
                        ),
                        next_at,
                    ),
                )


class ApiPollingModel:
    """Periodic polling of an API endpoint (mobile apps, IoT clouds)."""

    def __init__(self, universe: NameUniverse, period_min: float = 180.0, period_max: float = 900.0):
        self.universe = universe
        self.period_min = period_min
        self.period_max = period_max

    def schedule(self, device: Device, engine: SimulationEngine, start: float, end: float) -> None:
        favorites = device.house.favorite_apis
        if favorites and device.rng.random() < 0.65:
            host = device.rng.choice(favorites)
        else:
            host = self.universe.pick_api_host(device.rng)
        period = device.rng.uniform(self.period_min, self.period_max)
        first = start + device.rng.uniform(0, period)

        def poll(when: float) -> None:
            resolution = device.resolve(host.hostname, when)
            if not resolution.failed:
                device.open_connections(host, resolution, count=1, size_scale=0.3)
            next_at = when + period * device.rng.uniform(0.9, 1.1)
            if next_at < end:
                engine.schedule_at(next_at, _bind(poll, next_at))

        if first < end:
            engine.schedule_at(first, _bind(poll, first))


class VideoStreamingModel:
    """Occasional long streaming sessions with chunked segment fetches."""

    def __init__(self, universe: NameUniverse, sessions_per_hour: float = 0.12):
        self.universe = universe
        self.sessions_per_hour = sessions_per_hour

    def schedule(self, device: Device, engine: SimulationEngine, start: float, end: float) -> None:
        schedule_poisson(
            engine,
            device.rng,
            self.sessions_per_hour,
            start,
            end,
            lambda when: self._stream(device, engine, when, end),
        )

    def _stream(self, device: Device, engine: SimulationEngine, when: float, end: float) -> None:
        host = self.universe.pick_video_host(device.rng)
        rng = device.rng
        resolution = device.resolve(host.hostname, when)
        if resolution.failed:
            return
        device.open_connections(host, resolution, count=1, size_scale=1.0)
        # Segment fetches continue on the (cached) mapping for a while.
        segments = rng.randint(2, 8)
        t = resolution.completed_at
        for _ in range(segments):
            t += rng.uniform(20.0, 120.0)
            if t >= end:
                break
            engine.schedule_at(t, _bind(lambda when2: self._segment(device, host, when2), t))

    def _segment(self, device: Device, host, when: float) -> None:
        resolution = device.resolve(host.hostname, when)
        if not resolution.failed:
            device.open_connections(host, resolution, count=1, size_scale=0.25)


class ConnectivityCheckModel:
    """Android captive-portal probing of connectivitycheck.gstatic.com."""

    def __init__(self, universe: NameUniverse, period_median: float = 420.0):
        self.universe = universe
        self.period_median = period_median

    def schedule(self, device: Device, engine: SimulationEngine, start: float, end: float) -> None:
        host = self.universe.host(CONNECTIVITY_CHECK_HOST)
        rng = device.rng

        def probe(when: float) -> None:
            resolution = device.resolve(host.hostname, when)
            if not resolution.failed:
                device.open_connections(host, resolution, count=1, size_scale=1.0, port=443)
            next_at = when + rng.lognormvariate(math.log(self.period_median), 0.5)
            if next_at < end:
                engine.schedule_at(next_at, _bind(probe, next_at))

        first = start + rng.uniform(0, self.period_median)
        if first < end:
            engine.schedule_at(first, _bind(probe, first))


class P2PModel:
    """Peer-to-peer traffic: high ports both sides, no DNS (class N)."""

    def __init__(self, bursts_per_hour: float = 11.0, peers_min: int = 3, peers_max: int = 12):
        self.bursts_per_hour = bursts_per_hour
        self.peers_min = peers_min
        self.peers_max = peers_max

    def schedule(self, device: Device, engine: SimulationEngine, start: float, end: float) -> None:
        schedule_poisson(
            engine,
            device.rng,
            self.bursts_per_hour,
            start,
            end,
            lambda when: self._burst(device, when),
            diurnal=False,
        )

    def _burst(self, device: Device, when: float) -> None:
        rng = device.rng
        peers = rng.randint(self.peers_min, self.peers_max)
        t = when
        for _ in range(peers):
            peer_ip = f"{rng.randint(70, 95)}.{rng.randint(1, 254)}.{rng.randint(1, 254)}.{rng.randint(1, 254)}"
            peer_port = rng.randint(10000, 65000)
            proto = Proto.UDP if rng.random() < 0.45 else Proto.TCP
            size = rng.lognormvariate(math.log(8e4), 1.6)
            duration = rng.uniform(1.0, 240.0)
            device.connect_hardcoded(
                now=t,
                address=peer_ip,
                port=peer_port,
                proto=proto,
                duration_s=duration,
                orig_bytes=int(size * rng.uniform(0.2, 1.0)),
                resp_bytes=int(size),
                service="-",
            )
            t += rng.uniform(0.05, 4.0)


class IoTHardcodedModel:
    """Small-device traffic to hard-coded IPs (§5.1's N-class anatomy)."""

    def __init__(self, flavor: str = "tplink"):
        if flavor not in ("tplink", "ooma", "alarmnet"):
            raise ValueError(f"unknown IoT flavor {flavor!r}")
        self.flavor = flavor

    def schedule(self, device: Device, engine: SimulationEngine, start: float, end: float) -> None:
        rng = device.rng
        if self.flavor == "tplink":
            period = rng.uniform(600.0, 1800.0)
            action = self._tplink_ntp
        elif self.flavor == "ooma":
            period = rng.uniform(1800.0, 5400.0)
            action = self._ooma_ntp
        else:
            period = rng.uniform(900.0, 3600.0)
            action = self._alarmnet

        def fire(when: float) -> None:
            action(device, when)
            next_at = when + period * rng.uniform(0.85, 1.15)
            if next_at < end:
                engine.schedule_at(next_at, _bind(fire, next_at))

        first = start + rng.uniform(0, period)
        if first < end:
            engine.schedule_at(first, _bind(fire, first))

    def _tplink_ntp(self, device: Device, when: float) -> None:
        # The retired public NTP server: queries go unanswered (state S0).
        device.connect_hardcoded(
            now=when,
            address=RETIRED_NTP_SERVER,
            port=123,
            proto=Proto.UDP,
            duration_s=0.0,
            orig_bytes=48,
            resp_bytes=0,
            service="ntp",
            conn_state="S0",
        )

    def _ooma_ntp(self, device: Device, when: float) -> None:
        device.connect_hardcoded(
            now=when,
            address=device.rng.choice(OOMA_NTP_SERVERS),
            port=123,
            proto=Proto.UDP,
            duration_s=device.rng.uniform(0.01, 0.08),
            orig_bytes=48,
            resp_bytes=48,
            service="ntp",
        )

    def _alarmnet(self, device: Device, when: float) -> None:
        device.connect_hardcoded(
            now=when,
            address=device.rng.choice(ALARMNET_SERVERS),
            port=443,
            proto=Proto.TCP,
            duration_s=device.rng.uniform(0.2, 3.0),
            orig_bytes=device.rng.randint(500, 4000),
            resp_bytes=device.rng.randint(500, 6000),
            service="ssl",
        )


def _geometric(rng: random.Random, mean: float) -> int:
    """A geometric draw with the given mean (support from 0)."""
    if mean <= 0:
        return 0
    p = 1.0 / (1.0 + mean)
    count = 0
    while rng.random() > p and count < 64:
        count += 1
    return count
