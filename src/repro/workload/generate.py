"""End-to-end synthetic trace generation.

:class:`TrafficGenerator` wires the substrates together — hostname
universe and authoritative hierarchy, the four recursive resolver
platforms, sampled houses full of devices, and the application models —
then runs the discrete-event engine and returns the captured
:class:`~repro.monitor.capture.Trace` (the two Zeek-style datasets the
paper's analysis consumes, plus ground-truth annotations for
validation).
"""

from __future__ import annotations

import gc
import random

from repro.core.parallel import PressureStats
from repro.dns.cache import DnsCache
from repro.dns.resolver import RecursiveResolver, build_platform_profiles
from repro.monitor.capture import MonitorCapture, Trace
from repro.monitor.records import ConnRecord, DnsRecord
from repro.simulation.engine import SimulationEngine
from repro.simulation.faults import ConnectionBudget, FaultPlan
from repro.simulation.random import RandomStreams, derive_seed, poisson_arrivals
from repro.workload.apps import (
    ApiPollingModel,
    ConnectivityCheckModel,
    IoTHardcodedModel,
    P2PModel,
    VideoStreamingModel,
    WebBrowsingModel,
)
from repro.workload.devices import Device
from repro.workload.households import House, HouseholdBuilder
from repro.workload.namespace import NameUniverse
from repro.workload.scenario import ScenarioConfig


class TrafficGenerator:
    """Builds and runs one synthetic scenario."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        # Built once and shared by the fault plan and the resolvers; the
        # profiles are frozen dataclasses, so sharing is safe.
        self.profiles = build_platform_profiles()
        self.streams = RandomStreams(config.seed)
        self.universe = NameUniverse(
            rng=self.streams.stream("universe"),
            site_count=config.universe.site_count,
            cdn_host_count=config.universe.cdn_host_count,
            ads_host_count=config.universe.ads_host_count,
            analytics_host_count=config.universe.analytics_host_count,
            api_host_count=config.universe.api_host_count,
            video_host_count=config.universe.video_host_count,
            zipf_exponent=config.universe.zipf_exponent,
        )
        self.fault_plan = self._build_fault_plan()
        self.resolvers = self._build_resolvers()
        self.capture = MonitorCapture()
        pressure = config.pressure
        builder = HouseholdBuilder(
            mix=config.mix,
            resolvers=self.resolvers,
            universe=self.universe,
            capture=self.capture,
            rng=self.streams.stream("houses"),
            retry=config.faults.retry,
            stub_cache_capacity=pressure.stub_cache_capacity,
            stub_cache_policy=pressure.stub_cache_policy,
            stub_stale_ttl_s=pressure.stub_stale_ttl_s,
            stub_fd_budget=pressure.stub_fd_budget,
            stub_max_queue_wait_s=pressure.stub_max_queue_wait_s,
        )
        self.houses: list[House] = builder.build(config.houses)
        self.engine = SimulationEngine()

    def _build_fault_plan(self) -> FaultPlan | None:
        """The scenario's fault plan, or None when faults are disabled.

        The plan gets its own derived seed namespace so enabling faults
        never perturbs the workload's model streams, and a fault-free
        config builds no plan at all — resolvers take the legacy path.
        """
        config = self.config
        if not config.faults.enabled:
            return None
        return FaultPlan(
            config.faults,
            seed=derive_seed(config.seed, "faults"),
            platforms=tuple(sorted(self.profiles)),
            horizon_s=config.warmup + config.duration,
        )

    def _build_resolvers(self) -> dict[str, RecursiveResolver]:
        pressure = self.config.pressure
        resolvers = {}
        for name, profile in self.profiles.items():
            cache = None
            if (
                pressure.resolver_cache_capacity is not None
                or pressure.resolver_cache_policy != "lru"
            ):
                cache = DnsCache(
                    capacity=pressure.resolver_cache_capacity
                    if pressure.resolver_cache_capacity is not None
                    else profile.cache_capacity,
                    policy=pressure.resolver_cache_policy,
                    stale_ttl_s=pressure.resolver_stale_ttl_s,
                )
            budget = (
                ConnectionBudget(
                    pressure.resolver_fd_budget, pressure.resolver_max_queue_wait_s
                )
                if pressure.resolver_fd_budget is not None
                else None
            )
            resolvers[name] = RecursiveResolver(
                profile,
                self.universe.hierarchy,
                rng=self.streams.stream("resolver", name),
                faults=self.fault_plan,
                cache=cache,
                connection_budget=budget,
            )
        return resolvers

    # -- app attachment ------------------------------------------------------

    def _attach_apps(self, device: Device, start: float, end: float) -> None:
        rates = self.config.rates
        rng = device.rng
        if device.kind == "laptop":
            WebBrowsingModel(
                self.universe, self.config.browsing, rate_scale=rates.laptop_browsing_scale
            ).schedule(device, self.engine, start, end)
            VideoStreamingModel(
                self.universe, sessions_per_hour=rates.laptop_video_sessions_per_hour
            ).schedule(device, self.engine, start, end)
            if rng.random() < rates.laptop_api_probability:
                ApiPollingModel(self.universe).schedule(device, self.engine, start, end)
        elif device.kind == "android":
            WebBrowsingModel(
                self.universe, self.config.browsing, rate_scale=rates.android_browsing_scale
            ).schedule(device, self.engine, start, end)
            ConnectivityCheckModel(
                self.universe, period_median=rates.connectivity_check_median_period
            ).schedule(device, self.engine, start, end)
            if rng.random() < rates.android_api_probability:
                ApiPollingModel(self.universe).schedule(device, self.engine, start, end)
        elif device.kind == "tv":
            VideoStreamingModel(
                self.universe, sessions_per_hour=rates.tv_video_sessions_per_hour
            ).schedule(device, self.engine, start, end)
            ApiPollingModel(self.universe, period_min=300.0, period_max=1200.0).schedule(
                device, self.engine, start, end
            )
        elif device.kind == "iot":
            ApiPollingModel(self.universe, period_min=120.0, period_max=900.0).schedule(
                device, self.engine, start, end
            )
            flavor_draw = rng.random()
            if flavor_draw < 0.40:
                IoTHardcodedModel("tplink").schedule(device, self.engine, start, end)
            elif flavor_draw < 0.60:
                IoTHardcodedModel("ooma").schedule(device, self.engine, start, end)
            elif flavor_draw < 0.80:
                IoTHardcodedModel("alarmnet").schedule(device, self.engine, start, end)
        elif device.kind == "p2p":
            P2PModel(bursts_per_hour=rates.p2p_bursts_per_hour).schedule(
                device, self.engine, start, end
            )

    # -- flash crowds --------------------------------------------------------

    def _flash_crowd_windows(self, horizon: float) -> list[tuple[float, float]]:
        """Poisson (start, end) windows of synchronized demand spikes.

        Drawn from a derived seed namespace of their own, so enabling
        flash crowds never perturbs the workload's model streams — and
        an all-default pressure config draws nothing at all.
        """
        pressure = self.config.pressure
        if pressure.flash_crowd_rate_per_hour <= 0:
            return []
        rng = random.Random(derive_seed(self.config.seed, "flash-crowd"))
        rate_per_second = pressure.flash_crowd_rate_per_hour / 3600.0
        return [
            (start, min(start + pressure.flash_crowd_duration_s, horizon))
            for start in poisson_arrivals(rng, rate_per_second, 0.0, horizon)
        ]

    def _attach_flash_crowds(self, horizon: float) -> None:
        """Schedule the extra browsing bursts of each flash-crowd window.

        Every browsing-capable device gets an extra session-arrival
        process at ``flash_crowd_intensity`` times its base rate for the
        window's duration, with no diurnal thinning (the crowd is
        event-driven). Arrival streams derive from ``(seed,
        "flash-crowd", window, device)``, so the schedule is independent
        of device iteration order.
        """
        config = self.config
        pressure = config.pressure
        windows = self._flash_crowd_windows(horizon)
        if not windows:
            return
        scales = {
            "laptop": config.rates.laptop_browsing_scale,
            "android": config.rates.android_browsing_scale,
        }
        for index, (start, end) in enumerate(windows):
            for house in self.houses:
                for device in house.devices:
                    scale = scales.get(device.kind)
                    if scale is None:
                        continue
                    rng = random.Random(
                        derive_seed(config.seed, "flash-crowd", str(index), device.name)
                    )
                    WebBrowsingModel(
                        self.universe,
                        config.browsing,
                        rate_scale=scale * pressure.flash_crowd_intensity,
                    ).schedule(device, self.engine, start, end, rng=rng, diurnal=False)

    # -- run -------------------------------------------------------------------

    def run(self) -> Trace:
        """Run the scenario and return the captured trace."""
        config = self.config
        horizon = config.warmup + config.duration
        for house in self.houses:
            for device in house.devices:
                device.quic_fraction = config.rates.quic_fraction
                self._attach_apps(device, 0.0, horizon)
        self._attach_flash_crowds(horizon)
        self.engine.run(until=horizon)
        trace = self.capture.finish(duration=horizon, houses=config.houses)
        if config.warmup > 0:
            trace = _clip_warmup(trace, config.warmup)
        return trace

    def pressure_stats(self) -> PressureStats:
        """Aggregate cache/budget pressure counters after a run.

        Sums the additive counters of every stub cache/fd budget and
        every recursive platform into one mergeable
        :class:`~repro.core.parallel.PressureStats` tally.
        """
        stats = PressureStats()
        for house in self.houses:
            for device in house.devices:
                stub = device.stub
                cache_stats = stub.cache.stats
                budget = stub._budget  # noqa: SLF001 - generator-side accounting
                stats = stats.merged_with(
                    PressureStats(
                        stub_lookups=cache_stats.lookups,
                        stub_hits=cache_stats.hits,
                        stub_evictions=cache_stats.evictions,
                        stub_stale_serves=cache_stats.stale_serves,
                        stub_stale_expirations=cache_stats.stale_expirations,
                        stub_admitted=budget.admitted if budget is not None else 0,
                        stub_queued=budget.queued if budget is not None else 0,
                        stub_shed=budget.shed if budget is not None else 0,
                    )
                )
        for resolver in self.resolvers.values():
            cache_stats = resolver.cache.stats
            budget = resolver._budget  # noqa: SLF001 - generator-side accounting
            stats = stats.merged_with(
                PressureStats(
                    resolver_lookups=cache_stats.lookups,
                    resolver_hits=cache_stats.hits,
                    resolver_evictions=cache_stats.evictions,
                    resolver_stale_serves=cache_stats.stale_serves,
                    resolver_stale_expirations=cache_stats.stale_expirations,
                    resolver_admitted=budget.admitted if budget is not None else 0,
                    resolver_queued=budget.queued if budget is not None else 0,
                    resolver_refused=resolver.connections_refused,
                )
            )
        return stats


def _clip_warmup(trace: Trace, warmup: float) -> Trace:
    """Shift timestamps so the measurement window starts at zero.

    Connections inside the warmup window are dropped; DNS transactions
    are kept (shifted, possibly to negative timestamps) because later
    connections may pair with pre-window lookups — exactly as the
    paper's week-long capture pairs early connections with whatever
    lookups preceded them.

    The shifted copies are built with direct positional construction
    rather than :func:`dataclasses.replace`: ``replace`` rebuilds a
    field-name kwargs dict per record, which at week-scale (hundreds of
    thousands of records) is an allocation storm worth avoiding. The
    resulting records are field-for-field identical.
    """
    clipped = Trace(duration=trace.duration - warmup, houses=trace.houses)
    clipped.dns = [
        DnsRecord(
            record.ts - warmup,
            record.uid,
            record.orig_h,
            record.orig_p,
            record.resp_h,
            record.resp_p,
            record.query,
            record.qtype,
            record.rcode,
            record.rtt,
            record.answers,
            record.proto,
        )
        for record in trace.dns
    ]
    clipped.conns = [
        ConnRecord(
            record.ts - warmup,
            record.uid,
            record.orig_h,
            record.orig_p,
            record.resp_h,
            record.resp_p,
            record.proto,
            record.duration,
            record.orig_bytes,
            record.resp_bytes,
            record.service,
            record.conn_state,
        )
        for record in trace.conns
        if record.ts >= warmup
    ]
    kept_uids = {record.uid for record in clipped.conns}
    clipped.truth = {uid: truth for uid, truth in trace.truth.items() if uid in kept_uids}
    clipped.sort()
    return clipped


def generate_trace(config: ScenarioConfig) -> Trace:
    """Generate the trace for *config* (convenience wrapper).

    Generation allocates millions of short-lived, acyclic objects;
    the cyclic collector only adds pauses, so it is suspended for the
    run (and restored even on failure). Reference counting still frees
    everything promptly.
    """
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return TrafficGenerator(config).run()
    finally:
        if gc_was_enabled:
            gc.enable()


def generate_trace_with_pressure(config: ScenarioConfig) -> tuple[Trace, PressureStats]:
    """Generate the trace for *config* and its pressure tally.

    Same gc discipline as :func:`generate_trace`; use this variant when
    the cache/budget counters matter (pressure sweeps, benchmarks).
    """
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        generator = TrafficGenerator(config)
        trace = generator.run()
        return trace, generator.pressure_stats()
    finally:
        if gc_was_enabled:
            gc.enable()
