"""End-to-end synthetic trace generation, sharded within a scenario.

:class:`TrafficGenerator` wires the substrates together — hostname
universe and authoritative hierarchy, the four recursive resolver
platforms, sampled houses full of devices, and the application models —
and returns the captured :class:`~repro.monitor.capture.Trace` (the two
Zeek-style datasets the paper's analysis consumes, plus ground-truth
annotations for validation).

**Per-house decomposition.** Each house simulates in its own
discrete-event engine against its own *views* of the four resolver
platforms, so houses are causally independent by construction and a
scenario can be partitioned into house shards that run in parallel and
merge deterministically (:func:`~repro.monitor.capture.merge_traces`):
the trace is byte-identical for every shard count, because every house
is byte-identical in isolation. The coupling the shared resolver caches
used to carry — one house's lookup warming the cache another house then
hits — is folded into the platforms' existing statistical background
model: a house's view sees the platform's external population scaled by
the house count *plus* the other monitored houses as additional
background warmers (see :meth:`TrafficGenerator._view_profile`), which
preserves the calibrated shared-cache hit-rate structure while removing
the cross-house data dependency that forced serial generation.
"""

from __future__ import annotations

import dataclasses
import gc
import multiprocessing
import random
from dataclasses import dataclass

from repro.core.parallel import (
    PressureStats,
    effective_worker_count,
    in_scenario_fanout,
    merge_pressure_stats,
    run_scenarios,
)
from repro.dns.cache import DnsCache
from repro.dns.resolver import RecursiveResolver, ResolverProfile, build_platform_profiles
from repro.monitor.capture import MonitorCapture, Trace, merge_traces
from repro.monitor.records import ConnRecord, DnsRecord
from repro.simulation.engine import SimulationEngine
from repro.simulation.faults import ConnectionBudget, FaultPlan
from repro.simulation.random import RandomStreams, derive_seed, poisson_arrivals
from repro.workload.apps import (
    ApiPollingModel,
    ConnectivityCheckModel,
    IoTHardcodedModel,
    P2PModel,
    VideoStreamingModel,
    WebBrowsingModel,
)
from repro.workload.devices import Device
from repro.workload.households import House, HouseholdBuilder, HousePlan, plan_houses
from repro.workload.namespace import NameUniverse
from repro.workload.scenario import ScenarioConfig

#: House shards per generation worker when ``shards`` is left automatic:
#: finer than one shard per worker so an unlucky worker that drew the
#: chatty houses does not serialize the tail of the run.
GENERATION_SHARDS_PER_WORKER = 4


@dataclass(slots=True)
class HouseContext:
    """One house plus the per-house infrastructure it simulates against."""

    house: House
    resolvers: dict[str, RecursiveResolver]
    capture: MonitorCapture


@dataclass(frozen=True, slots=True)
class HouseShardResult:
    """What one house-shard run sends back to the merging parent."""

    parts: tuple[Trace, ...]
    pressure: PressureStats


class TrafficGenerator:
    """Builds and runs one synthetic scenario."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        # Built once and shared by the fault plan and the resolvers; the
        # profiles are frozen dataclasses, so sharing is safe.
        self.profiles = build_platform_profiles()
        self.streams = RandomStreams(config.seed)
        self.universe = NameUniverse(
            rng=self.streams.stream("universe"),
            site_count=config.universe.site_count,
            cdn_host_count=config.universe.cdn_host_count,
            ads_host_count=config.universe.ads_host_count,
            analytics_host_count=config.universe.analytics_host_count,
            api_host_count=config.universe.api_host_count,
            video_host_count=config.universe.video_host_count,
            zipf_exponent=config.universe.zipf_exponent,
        )
        self.fault_plan = self._build_fault_plan()
        self.house_plans: list[HousePlan] = plan_houses(
            config.mix, self.streams.stream("houses"), config.houses
        )
        self._contexts: list[HouseContext] | None = None

    @property
    def houses(self) -> list[House]:
        """The scenario's houses (built on first access)."""
        return [context.house for context in self._house_contexts()]

    def _house_contexts(self) -> list[HouseContext]:
        if self._contexts is None:
            self._contexts = [self._build_house_context(plan) for plan in self.house_plans]
        return self._contexts

    def _build_fault_plan(self) -> FaultPlan | None:
        """The scenario's fault plan, or None when faults are disabled.

        The plan gets its own derived seed namespace so enabling faults
        never perturbs the workload's model streams, and a fault-free
        config builds no plan at all — resolvers take the legacy path.
        Decisions are a pure function of ``(platform, qname, time)``, so
        one plan is safely shared by every house view in a process and
        rebuilt identically in every shard worker.
        """
        config = self.config
        if not config.faults.enabled:
            return None
        return FaultPlan(
            config.faults,
            seed=derive_seed(config.seed, "faults"),
            platforms=tuple(sorted(self.profiles)),
            horizon_s=config.warmup + config.duration,
        )

    # -- per-house infrastructure -------------------------------------------

    def _view_profile(self, profile: ResolverProfile) -> ResolverProfile:
        """The per-house view of a shared platform profile.

        A house's view owns a private cache, so the warming that other
        *monitored* houses physically provided through the shared cache
        must be modelled statistically, exactly like the platform's
        unmonitored clients already are. With ``H`` houses the old
        shared-cache warm probability used the platform-wide demand —
        ``H`` times one house's rate — scaled by ``background_scale``;
        the view therefore multiplies ``background_scale`` by ``H`` to
        restore the external population, and adds ``H - 1`` to fold in
        the other monitored houses as unit-rate background warmers.
        Both terms pass through the same frontend-sharding visibility
        factor (``cache_effectiveness``) a physical cross-house hit
        always paid.
        """
        houses = self.config.houses
        if houses <= 1 or profile.background_scale <= 0:
            return profile
        return dataclasses.replace(
            profile,
            background_scale=profile.background_scale * houses + (houses - 1),
        )

    def _sliced(self, capacity: int | None) -> int | None:
        """A platform-wide entry/slot budget divided among house views.

        Ceiling division so tiny budgets stay usable; the aggregate
        across views rounds up by at most ``houses - 1`` entries.
        """
        if capacity is None:
            return None
        return max(1, -(-capacity // self.config.houses))

    def _build_house_resolvers(self, index: int) -> dict[str, RecursiveResolver]:
        """This house's private views of the four resolver platforms.

        Pressure-config capacities and fd budgets describe the *shared*
        platform, so each view gets a per-house slice (documented in
        :class:`~repro.workload.scenario.PressureConfig`).
        """
        pressure = self.config.pressure
        resolvers = {}
        for name, profile in self.profiles.items():
            view = self._view_profile(profile)
            cache = None
            if (
                pressure.resolver_cache_capacity is not None
                or pressure.resolver_cache_policy != "lru"
            ):
                cache = DnsCache(
                    capacity=self._sliced(pressure.resolver_cache_capacity)
                    if pressure.resolver_cache_capacity is not None
                    else profile.cache_capacity,
                    policy=pressure.resolver_cache_policy,
                    stale_ttl_s=pressure.resolver_stale_ttl_s,
                )
            budget = (
                ConnectionBudget(
                    self._sliced(pressure.resolver_fd_budget),
                    pressure.resolver_max_queue_wait_s,
                )
                if pressure.resolver_fd_budget is not None
                else None
            )
            resolvers[name] = RecursiveResolver(
                view,
                self.universe.hierarchy,
                rng=random.Random(derive_seed(self.config.seed, "resolver", name, index)),
                faults=self.fault_plan,
                cache=cache,
                connection_budget=budget,
            )
        return resolvers

    def _build_house_context(self, plan: HousePlan) -> HouseContext:
        """Build one house with its own capture sink and resolver views.

        The uid namespace is the zero-padded house index, so uids stay
        globally unique across independently simulated houses and the
        canonical ``(ts, uid)`` merge order is house-then-capture order.
        """
        pressure = self.config.pressure
        capture = MonitorCapture(uid_namespace=f"{plan.index:04x}")
        resolvers = self._build_house_resolvers(plan.index)
        builder = HouseholdBuilder(
            mix=self.config.mix,
            resolvers=resolvers,
            universe=self.universe,
            capture=capture,
            rng=random.Random(plan.seed),
            retry=self.config.faults.retry,
            stub_cache_capacity=pressure.stub_cache_capacity,
            stub_cache_policy=pressure.stub_cache_policy,
            stub_stale_ttl_s=pressure.stub_stale_ttl_s,
            stub_fd_budget=pressure.stub_fd_budget,
            stub_max_queue_wait_s=pressure.stub_max_queue_wait_s,
        )
        house = builder.build_house_from_plan(plan)
        return HouseContext(house=house, resolvers=resolvers, capture=capture)

    # -- app attachment ------------------------------------------------------

    def _attach_apps(
        self, device: Device, engine: SimulationEngine, start: float, end: float
    ) -> None:
        rates = self.config.rates
        rng = device.rng
        if device.kind == "laptop":
            WebBrowsingModel(
                self.universe, self.config.browsing, rate_scale=rates.laptop_browsing_scale
            ).schedule(device, engine, start, end)
            VideoStreamingModel(
                self.universe, sessions_per_hour=rates.laptop_video_sessions_per_hour
            ).schedule(device, engine, start, end)
            if rng.random() < rates.laptop_api_probability:
                ApiPollingModel(self.universe).schedule(device, engine, start, end)
        elif device.kind == "android":
            WebBrowsingModel(
                self.universe, self.config.browsing, rate_scale=rates.android_browsing_scale
            ).schedule(device, engine, start, end)
            ConnectivityCheckModel(
                self.universe, period_median=rates.connectivity_check_median_period
            ).schedule(device, engine, start, end)
            if rng.random() < rates.android_api_probability:
                ApiPollingModel(self.universe).schedule(device, engine, start, end)
        elif device.kind == "tv":
            VideoStreamingModel(
                self.universe, sessions_per_hour=rates.tv_video_sessions_per_hour
            ).schedule(device, engine, start, end)
            ApiPollingModel(self.universe, period_min=300.0, period_max=1200.0).schedule(
                device, engine, start, end
            )
        elif device.kind == "iot":
            ApiPollingModel(self.universe, period_min=120.0, period_max=900.0).schedule(
                device, engine, start, end
            )
            flavor_draw = rng.random()
            if flavor_draw < 0.40:
                IoTHardcodedModel("tplink").schedule(device, engine, start, end)
            elif flavor_draw < 0.60:
                IoTHardcodedModel("ooma").schedule(device, engine, start, end)
            elif flavor_draw < 0.80:
                IoTHardcodedModel("alarmnet").schedule(device, engine, start, end)
        elif device.kind == "p2p":
            P2PModel(bursts_per_hour=rates.p2p_bursts_per_hour).schedule(
                device, engine, start, end
            )

    # -- flash crowds --------------------------------------------------------

    def _flash_crowd_windows(self, horizon: float) -> list[tuple[float, float]]:
        """Poisson (start, end) windows of synchronized demand spikes.

        Drawn from a derived seed namespace of their own, so enabling
        flash crowds never perturbs the workload's model streams — and
        an all-default pressure config draws nothing at all. The windows
        depend only on the config, so every shard worker recomputes the
        identical schedule.
        """
        pressure = self.config.pressure
        if pressure.flash_crowd_rate_per_hour <= 0:
            return []
        rng = random.Random(derive_seed(self.config.seed, "flash-crowd"))
        rate_per_second = pressure.flash_crowd_rate_per_hour / 3600.0
        return [
            (start, min(start + pressure.flash_crowd_duration_s, horizon))
            for start in poisson_arrivals(rng, rate_per_second, 0.0, horizon)
        ]

    def _attach_flash_crowds(
        self,
        house: House,
        engine: SimulationEngine,
        windows: list[tuple[float, float]],
    ) -> None:
        """Schedule one house's extra browsing bursts for each window.

        Every browsing-capable device gets an extra session-arrival
        process at ``flash_crowd_intensity`` times its base rate for the
        window's duration, with no diurnal thinning (the crowd is
        event-driven). Arrival streams derive from ``(seed,
        "flash-crowd", window, device)``, so the schedule is independent
        of device iteration order — and of house sharding.
        """
        config = self.config
        pressure = config.pressure
        scales = {
            "laptop": config.rates.laptop_browsing_scale,
            "android": config.rates.android_browsing_scale,
        }
        for index, (start, end) in enumerate(windows):
            for device in house.devices:
                scale = scales.get(device.kind)
                if scale is None:
                    continue
                rng = random.Random(
                    derive_seed(config.seed, "flash-crowd", str(index), device.name)
                )
                WebBrowsingModel(
                    self.universe,
                    config.browsing,
                    rate_scale=scale * pressure.flash_crowd_intensity,
                ).schedule(device, engine, start, end, rng=rng, diurnal=False)

    # -- run -------------------------------------------------------------------

    def _run_house(
        self,
        context: HouseContext,
        horizon: float,
        windows: list[tuple[float, float]],
    ) -> Trace:
        """Simulate one house to *horizon*; returns its clipped part."""
        config = self.config
        engine = SimulationEngine()
        for device in context.house.devices:
            device.quic_fraction = config.rates.quic_fraction
            self._attach_apps(device, engine, 0.0, horizon)
        self._attach_flash_crowds(context.house, engine, windows)
        engine.run(until=horizon)
        part = context.capture.finish(duration=horizon, houses=1)
        if config.warmup > 0:
            part = _clip_warmup(part, config.warmup)
        return part

    def run(self) -> Trace:
        """Run the scenario serially and return the captured trace."""
        config = self.config
        horizon = config.warmup + config.duration
        windows = self._flash_crowd_windows(horizon)
        parts = [
            self._run_house(context, horizon, windows)
            for context in self._house_contexts()
        ]
        return merge_traces(
            parts, duration_s=horizon - config.warmup, houses=config.houses
        )

    def run_shard(self, indices: list[int]) -> HouseShardResult:
        """Simulate the houses named by *indices* (one shard's work).

        Builds only those houses' contexts — in a forked worker the
        parent's universe and plans arrive through copy-on-write memory,
        so per-shard setup stays proportional to the shard. Pressure
        counters are tallied per house and merged here, letting each
        house context (devices, caches, resolver views) die as soon as
        its part is captured.
        """
        config = self.config
        horizon = config.warmup + config.duration
        windows = self._flash_crowd_windows(horizon)
        parts = []
        pressure = PressureStats()
        for index in indices:
            context = self._build_house_context(self.house_plans[index])
            parts.append(self._run_house(context, horizon, windows))
            pressure = pressure.merged_with(_house_pressure_stats(context))
        return HouseShardResult(parts=tuple(parts), pressure=pressure)

    def pressure_stats(self) -> PressureStats:
        """Aggregate cache/budget pressure counters after a run.

        Sums the additive counters of every stub cache/fd budget and
        every per-house resolver view into one mergeable
        :class:`~repro.core.parallel.PressureStats` tally.
        """
        return merge_pressure_stats(
            [_house_pressure_stats(context) for context in self._house_contexts()]
        )


def _house_pressure_stats(context: HouseContext) -> PressureStats:
    """One house's additive pressure tally (stubs plus resolver views)."""
    stats = PressureStats()
    for device in context.house.devices:
        stub = device.stub
        cache_stats = stub.cache.stats
        budget = stub._budget  # noqa: SLF001 - generator-side accounting
        stats = stats.merged_with(
            PressureStats(
                stub_lookups=cache_stats.lookups,
                stub_hits=cache_stats.hits,
                stub_evictions=cache_stats.evictions,
                stub_stale_serves=cache_stats.stale_serves,
                stub_stale_expirations=cache_stats.stale_expirations,
                stub_admitted=budget.admitted if budget is not None else 0,
                stub_queued=budget.queued if budget is not None else 0,
                stub_shed=budget.shed if budget is not None else 0,
            )
        )
    for resolver in context.resolvers.values():
        cache_stats = resolver.cache.stats
        budget = resolver._budget  # noqa: SLF001 - generator-side accounting
        stats = stats.merged_with(
            PressureStats(
                resolver_lookups=cache_stats.lookups,
                resolver_hits=cache_stats.hits,
                resolver_evictions=cache_stats.evictions,
                resolver_stale_serves=cache_stats.stale_serves,
                resolver_stale_expirations=cache_stats.stale_expirations,
                resolver_admitted=budget.admitted if budget is not None else 0,
                resolver_queued=budget.queued if budget is not None else 0,
                resolver_refused=resolver.connections_refused,
            )
        )
    return stats


def _clip_warmup(trace: Trace, warmup: float) -> Trace:
    """Shift timestamps so the measurement window starts at zero.

    Connections inside the warmup window are dropped; DNS transactions
    are kept (shifted, possibly to negative timestamps) because later
    connections may pair with pre-window lookups — exactly as the
    paper's week-long capture pairs early connections with whatever
    lookups preceded them.

    The shifted copies are built with direct positional construction
    rather than :func:`dataclasses.replace`: ``replace`` rebuilds a
    field-name kwargs dict per record, which at week-scale (hundreds of
    thousands of records) is an allocation storm worth avoiding. The
    resulting records are field-for-field identical.
    """
    clipped = Trace(duration=trace.duration - warmup, houses=trace.houses)
    clipped.dns = [
        DnsRecord(
            record.ts - warmup,
            record.uid,
            record.orig_h,
            record.orig_p,
            record.resp_h,
            record.resp_p,
            record.query,
            record.qtype,
            record.rcode,
            record.rtt,
            record.answers,
            record.proto,
        )
        for record in trace.dns
    ]
    clipped.conns = [
        ConnRecord(
            record.ts - warmup,
            record.uid,
            record.orig_h,
            record.orig_p,
            record.resp_h,
            record.resp_p,
            record.proto,
            record.duration,
            record.orig_bytes,
            record.resp_bytes,
            record.service,
            record.conn_state,
        )
        for record in trace.conns
        if record.ts >= warmup
    ]
    kept_uids = {record.uid for record in clipped.conns}
    clipped.truth = {uid: truth for uid, truth in trace.truth.items() if uid in kept_uids}
    clipped.sort()
    return clipped


def _resolve_fanout(config: ScenarioConfig, shards: int | None, workers: int) -> tuple[int, int]:
    """The (shards, workers) a generation run will actually use.

    Workers degrade to 1 when forking is unavailable (the generator's
    universe holds closures a pickling pool cannot ship) or when this
    process is already inside a scenario fan-out (nested pools are
    rejected by :func:`~repro.core.parallel.run_scenarios`; a serial
    shard loop is byte-identical anyway). Automatic sharding gives each
    effective worker :data:`GENERATION_SHARDS_PER_WORKER` shards,
    bounded by the house count; explicit ``shards`` is honoured as-is
    (bounded by houses) so parity tests can pin any shard count.
    """
    if workers < 1:
        workers = 1
    if workers > 1 and (
        in_scenario_fanout()
        or "fork" not in multiprocessing.get_all_start_methods()
    ):
        workers = 1
    if shards is None:
        effective = effective_worker_count(workers, jobs=config.houses)
        shards = 1 if effective <= 1 else min(
            config.houses, effective * GENERATION_SHARDS_PER_WORKER
        )
    shards = max(1, min(shards, config.houses))
    return shards, workers


def _generate(
    config: ScenarioConfig, shards: int | None, workers: int
) -> tuple[Trace, PressureStats]:
    """Generate *config*'s trace, sharded and fanned out as requested."""
    generator = TrafficGenerator(config)
    shard_count, workers = _resolve_fanout(config, shards, workers)
    if shard_count <= 1:
        trace = generator.run()
        return trace, generator.pressure_stats()
    horizon = config.warmup + config.duration
    # Round-robin partition: shard s owns houses s, s+S, s+2S, ... —
    # house index decides the shard, so membership is independent of
    # worker count, and the canonical merge is independent of shards.
    partitions = [
        list(range(shard, config.houses, shard_count)) for shard in range(shard_count)
    ]
    results: list[HouseShardResult] = run_scenarios(
        partitions, generator.run_shard, workers=workers
    )
    parts = [part for result in results for part in result.parts]
    trace = merge_traces(parts, duration_s=horizon - config.warmup, houses=config.houses)
    return trace, merge_pressure_stats([result.pressure for result in results])


def generate_trace(
    config: ScenarioConfig, shards: int | None = None, workers: int = 1
) -> Trace:
    """Generate the trace for *config* (convenience wrapper).

    ``shards``/``workers`` fan the scenario's houses out over a fork
    pool; the result is byte-identical for every combination (the
    golden parity tests pin this). Generation allocates millions of
    short-lived, acyclic objects; the cyclic collector only adds
    pauses, so it is suspended for the run (and restored even on
    failure). Reference counting still frees everything promptly.
    """
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        trace, _ = _generate(config, shards, workers)
        return trace
    finally:
        if gc_was_enabled:
            gc.enable()


def generate_trace_with_pressure(
    config: ScenarioConfig, shards: int | None = None, workers: int = 1
) -> tuple[Trace, PressureStats]:
    """Generate the trace for *config* and its pressure tally.

    Same gc discipline and fan-out contract as :func:`generate_trace`;
    use this variant when the cache/budget counters matter (pressure
    sweeps, benchmarks). The tally is summed per house and merged, so
    it too is independent of the shard/worker split.
    """
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return _generate(config, shards, workers)
    finally:
        if gc_was_enabled:
            gc.enable()
