"""The hostname universe behind the synthetic residential workload.

Builds a population of web sites (primary hostnames plus site-local
subdomains), shared third-party services (CDN, advertising, analytics),
streaming/video services, API endpoints, and the special hostnames the
paper calls out (``connectivitycheck.gstatic.com``). Every name is
registered in a :class:`~repro.dns.zone.DnsHierarchy` with realistic
TTLs; CDN-hosted names get *dynamic* answers that depend on which
resolver platform asks — the mechanism behind the paper's §7
throughput-vs-resolver analysis.

Site popularity follows a Zipf law, matching decades of web measurement.
"""

from __future__ import annotations

import ipaddress
import random
import zlib
from bisect import bisect_right
from dataclasses import dataclass

from repro.dns.zone import DnsHierarchy
from repro.errors import WorkloadError
from repro.dns.rr import ResourceRecord, a_record
from repro.simulation.random import zipf_weights

# Fixed addresses for the §5.1 hard-coded-IP artifacts.
RETIRED_NTP_SERVER = "128.138.141.172"
OOMA_NTP_SERVERS = ("184.105.182.16", "184.105.182.17")
ALARMNET_SERVERS = ("199.64.78.20", "199.64.78.21")

CONNECTIVITY_CHECK_HOST = "connectivitycheck.gstatic.com"

# TTL population: (ttl seconds, weight). Mirrors edge-network passive
# observations: a spread from short CDN TTLs to day-long infrastructure
# records, with the bulk in the minutes-to-an-hour range.
TTL_CHOICES = ((60, 0.10), (300, 0.30), (900, 0.30), (3600, 0.22), (86400, 0.08))

RESOLVER_PLATFORMS = ("local", "google", "opendns", "cloudflare")


@dataclass(frozen=True, slots=True)
class HostProfile:
    """One resolvable hostname and its serving characteristics."""

    hostname: str
    category: str
    ttl: int
    addresses: tuple[str, ...]
    cdn_org: str | None = None
    base_throughput: float = 2e6  # bytes/second before edge/noise factors
    typical_bytes: float = 2e5   # median transfer size in bytes


@dataclass(frozen=True, slots=True)
class SiteProfile:
    """A web site: its primary host, subresources, and outbound links."""

    primary: HostProfile
    subresources: tuple[HostProfile, ...]
    popularity: float


class IpAllocator:
    """Hands out addresses from successive /24 blocks per organisation."""

    def __init__(self, base: str = "60.0.0.0"):
        self._base = int(ipaddress.IPv4Address(base))
        self._next_block = 0
        self._org_blocks: dict[str, int] = {}
        self._org_next: dict[str, int] = {}

    def allocate(self, org: str) -> str:
        """Next address inside *org*'s block (a fresh /24 per 254 hosts)."""
        if org not in self._org_blocks:
            self._org_blocks[org] = self._next_block
            self._org_next[org] = 1
            self._next_block += 1
        host = self._org_next[org]
        if host > 254:
            self._org_blocks[org] = self._next_block
            self._next_block += 1
            self._org_next[org] = 1
            host = 1
        self._org_next[org] = host + 1
        address = self._base + self._org_blocks[org] * 256 + host
        return str(ipaddress.IPv4Address(address))


@dataclass(frozen=True, slots=True)
class CdnEdge:
    """One CDN edge cluster: the addresses a platform's queries map to.

    Edge quality is bimodal: a connection lands on a well-provisioned
    path with probability ``1 - slow_fraction`` (factor ``fast_factor``)
    and on a congested/far one otherwise (``slow_factor``). For
    Cloudflare-resolved clients the slow mode dominates, reproducing the
    paper's Figure 3 (bottom): lower throughput for ~75% of connections,
    converging with the other platforms in the tail.
    """

    addresses: tuple[str, ...]
    fast_factor: float = 1.0
    slow_factor: float = 1.0
    slow_fraction: float = 0.0

    @property
    def throughput_factor(self) -> float:
        """Expected factor (for coarse reasoning and tests)."""
        return (
            self.slow_fraction * self.slow_factor
            + (1.0 - self.slow_fraction) * self.fast_factor
        )

    # Transfers past this size amortise per-object edge overheads, so
    # the slow mode no longer binds (why Figure 3's tails converge).
    SLOW_MODE_SIZE_LIMIT = 2e5

    def sample_factor(self, rng: random.Random, size: float | None = None) -> float:
        """Draw the throughput factor for one connection of *size* bytes.

        The slow mode models per-object edge overhead (far edge, cold
        edge cache): it binds small transfers, while bulk transfers ramp
        to the path rate regardless of edge choice.
        """
        if size is not None and size >= self.SLOW_MODE_SIZE_LIMIT:
            return self.fast_factor
        if self.slow_fraction and rng.random() < self.slow_fraction:
            return self.slow_factor
        return self.fast_factor

    def addresses_for(self, hostname: str) -> tuple[str, ...]:
        """The stable two-address subset served for *hostname*.

        Spreading hostnames over the cluster keeps DN-Hunter pairing
        mostly unambiguous (the paper finds a unique candidate for 82%
        of transactions) while still modelling shared CDN hosting.
        """
        if len(self.addresses) <= 2:
            return self.addresses
        index = zlib.crc32(hostname.encode("utf-8")) % len(self.addresses)
        return (self.addresses[index], self.addresses[(index + 1) % len(self.addresses)])


class NameUniverse:
    """The complete synthetic namespace plus its authoritative hierarchy."""

    def __init__(
        self,
        rng: random.Random,
        site_count: int = 120,
        cdn_host_count: int = 18,
        ads_host_count: int = 12,
        analytics_host_count: int = 6,
        api_host_count: int = 15,
        video_host_count: int = 8,
        zipf_exponent: float = 0.9,
    ):
        if site_count < 2:
            raise WorkloadError(f"need at least 2 sites, got {site_count}")
        self.rng = rng
        self.hierarchy = DnsHierarchy()
        self._allocator = IpAllocator()
        self.hosts: dict[str, HostProfile] = {}
        self._cdn_edges: dict[tuple[str, str], CdnEdge] = {}

        self.cdn_hosts = self._build_cdn_pool(cdn_host_count)
        self.ads_hosts = self._build_third_party("adnet", "ads", ads_host_count, ttl=300, typical_bytes=2.5e4)
        self.analytics_hosts = self._build_third_party(
            "metricsco", "analytics", analytics_host_count, ttl=3600, typical_bytes=1.2e4
        )
        self.api_hosts = self._build_third_party("cloudapi", "api", api_host_count, ttl=600)
        self.video_hosts = self._build_video_pool(video_host_count)
        self.sites = self._build_sites(site_count, zipf_exponent)
        self.connectivity_check = self._build_connectivity_check()
        self._site_weights = [site.popularity for site in self.sites]
        # Running prefix sums of the weights, built with the same
        # left-to-right float additions the old linear scan performed, so
        # a bisect draw lands on exactly the site the scan would have.
        cumulative: list[float] = []
        acc = 0.0
        for weight in self._site_weights:
            acc += weight
            cumulative.append(acc)
        self._site_cumulative = cumulative
        self._site_total = acc

    # -- construction ----------------------------------------------------

    def _pick_ttl(self) -> int:
        total = sum(weight for _, weight in TTL_CHOICES)
        target = self.rng.random() * total
        acc = 0.0
        for ttl, weight in TTL_CHOICES:
            acc += weight
            if target < acc:
                return ttl
        return TTL_CHOICES[-1][0]

    def _register_static(self, profile: HostProfile) -> HostProfile:
        for address in profile.addresses:
            self.hierarchy.add_address(profile.hostname, address, ttl=profile.ttl)
        self.hosts[profile.hostname] = profile
        return profile

    def _register_cdn(self, profile: HostProfile) -> HostProfile:
        """Register a CDN-hosted name whose answers depend on the asker."""
        org = profile.cdn_org
        if org is None:
            raise WorkloadError(f"{profile.hostname} has no CDN organisation")
        hostname = profile.hostname
        ttl = profile.ttl
        # Answers are a pure function of the requester's platform (the
        # edge mapping and the per-hostname address subset are both
        # deterministic), so each platform's RRset is built once and the
        # same immutable records are handed back on every later query.
        memo: dict[str, tuple[ResourceRecord, ...]] = {}

        def provider(requester: str) -> tuple[ResourceRecord, ...]:
            platform = requester if requester in RESOLVER_PLATFORMS else "local"
            records = memo.get(platform)
            if records is None:
                edge = self.cdn_edge(org, platform)
                records = tuple(
                    a_record(hostname, address, ttl)
                    for address in edge.addresses_for(hostname)
                )
                memo[platform] = records
            return records

        self.hierarchy.add_dynamic_address(hostname, provider)
        self.hosts[hostname] = profile
        return profile

    def _ensure_cdn_edges(self, org: str) -> None:
        """Create per-platform edge clusters for *org*.

        Edge quality encodes the paper's Fig. 3 (bottom) finding: the
        three "big" platforms map clients to roughly equivalent edges,
        while Cloudflare-resolved connections land on a slower edge for
        the bulk of the distribution (converging in the tail), and
        Google-resolved connections do marginally better in the tail.
        """
        shapes = {
            "local": dict(fast_factor=1.0, slow_factor=0.85, slow_fraction=0.15),
            "google": dict(fast_factor=1.12, slow_factor=0.9, slow_fraction=0.15),
            "opendns": dict(fast_factor=0.97, slow_factor=0.8, slow_fraction=0.15),
            "cloudflare": dict(fast_factor=1.0, slow_factor=0.35, slow_fraction=0.75),
        }
        for platform in RESOLVER_PLATFORMS:
            key = (org, platform)
            if key in self._cdn_edges:
                continue
            addresses = tuple(
                self._allocator.allocate(f"{org}-edge-{platform}") for _ in range(40)
            )
            self._cdn_edges[key] = CdnEdge(addresses=addresses, **shapes[platform])

    def cdn_edge(self, org: str, platform: str) -> CdnEdge:
        """The edge cluster *platform*'s resolvers are mapped to for *org*."""
        key = (org, platform if platform in RESOLVER_PLATFORMS else "local")
        edge = self._cdn_edges.get(key)
        if edge is None:
            self._ensure_cdn_edges(org)
            edge = self._cdn_edges[key]
        return edge

    def _build_cdn_pool(self, count: int) -> list[HostProfile]:
        pool: list[HostProfile] = []
        orgs = ("fastedge", "globalcache", "edgecast")
        for index in range(count):
            org = orgs[index % len(orgs)]
            hostname = f"c{index}.{org}.net"
            profile = HostProfile(
                hostname=hostname,
                category="cdn",
                ttl=self.rng.choice((60, 60, 300, 300, 900)),
                addresses=(),
                cdn_org=org,
                base_throughput=6e6,
                typical_bytes=4e5,
            )
            self._ensure_cdn_edges(org)
            pool.append(self._register_cdn(profile))
        return pool

    def _build_third_party(
        self, org: str, label: str, count: int, ttl: int, typical_bytes: float = 8e4
    ) -> list[HostProfile]:
        pool: list[HostProfile] = []
        for index in range(count):
            hostname = f"{label}{index}.{org}.com"
            profile = HostProfile(
                hostname=hostname,
                category=label,
                ttl=ttl,
                addresses=(self._allocator.allocate(org),),
                base_throughput=1.5e6,
                typical_bytes=typical_bytes,
            )
            pool.append(self._register_static(profile))
        return pool

    def _build_video_pool(self, count: int) -> list[HostProfile]:
        pool: list[HostProfile] = []
        orgs = ("fastedge", "globalcache")
        for index in range(count):
            org = orgs[index % len(orgs)]
            hostname = f"v{index}.stream{index % 3}.tv"
            profile = HostProfile(
                hostname=hostname,
                category="video",
                ttl=self.rng.choice((60, 300, 300, 900)),
                addresses=(),
                cdn_org=org,
                base_throughput=8e6,
                typical_bytes=3e7,
            )
            pool.append(self._register_cdn(profile))
        return pool

    def _build_sites(self, count: int, zipf_exponent: float) -> list[SiteProfile]:
        weights = zipf_weights(count, zipf_exponent)
        sites: list[SiteProfile] = []
        for rank in range(count):
            domain = f"site{rank}.example-{rank % 7}.com"
            on_cdn = self.rng.random() < 0.45
            if on_cdn:
                org = self.rng.choice(("fastedge", "globalcache", "edgecast"))
                primary = self._register_cdn(
                    HostProfile(
                        hostname=f"www.{domain}",
                        category="site",
                        ttl=self._pick_ttl(),
                        addresses=(),
                        cdn_org=org,
                        base_throughput=4e6,
                        typical_bytes=2.5e5,
                    )
                )
            else:
                primary = self._register_static(
                    HostProfile(
                        hostname=f"www.{domain}",
                        category="site",
                        ttl=self._pick_ttl(),
                        addresses=(self._allocator.allocate(domain),),
                        base_throughput=2.5e6,
                        typical_bytes=2.5e5,
                    )
                )
            subresources: list[HostProfile] = []
            for label in ("static", "img"):
                if self.rng.random() < 0.7:
                    subresources.append(
                        self._register_static(
                            HostProfile(
                                hostname=f"{label}.{domain}",
                                category="subresource",
                                ttl=primary.ttl,
                                addresses=(self._allocator.allocate(domain),),
                                base_throughput=3e6,
                                typical_bytes=1.5e5,
                            )
                        )
                    )
            shared: list[HostProfile] = []
            shared.extend(self.rng.sample(self.cdn_hosts, k=min(2, len(self.cdn_hosts))))
            shared.extend(self.rng.sample(self.ads_hosts, k=min(2, len(self.ads_hosts))))
            shared.extend(self.rng.sample(self.analytics_hosts, k=1))
            sites.append(
                SiteProfile(
                    primary=primary,
                    subresources=tuple(subresources + shared),
                    popularity=weights[rank],
                )
            )
        return sites

    def _build_connectivity_check(self) -> HostProfile:
        # Captive-portal probes transfer a couple hundred bytes and then
        # linger before teardown, so their measured throughput
        # (bytes/duration) is tiny — the artifact that drags Google's
        # Figure 3 (bottom) line down until filtered out.
        profile = HostProfile(
            hostname=CONNECTIVITY_CHECK_HOST,
            category="connectivity",
            ttl=300,
            addresses=(self._allocator.allocate("gstatic"),),
            base_throughput=2.5e4,
            typical_bytes=600.0,
        )
        return self._register_static(profile)

    # -- sampling ----------------------------------------------------------

    def pick_site(self, rng: random.Random) -> SiteProfile:
        """Draw a site Zipf-proportionally to its popularity."""
        target = rng.random() * self._site_total
        index = bisect_right(self._site_cumulative, target)
        if index >= len(self.sites):
            return self.sites[-1]
        return self.sites[index]

    def pick_link_targets(self, rng: random.Random, count: int, exclude: str) -> list[SiteProfile]:
        """Sites a page links to (prefetch candidates), excluding itself.

        Links skew toward the long tail (article links, ads): 60% are
        drawn uniformly over the site population, the rest by
        popularity. This is what makes speculative lookups mostly *cold*
        (hence worth prefetching) yet often never used (§5.2).
        """
        targets: list[SiteProfile] = []
        attempts = 0
        while len(targets) < count and attempts < count * 6:
            attempts += 1
            if rng.random() < 0.6:
                candidate = rng.choice(self.sites)
            else:
                candidate = self.pick_site(rng)
            if candidate.primary.hostname == exclude:
                continue
            if any(existing.primary.hostname == candidate.primary.hostname for existing in targets):
                continue
            targets.append(candidate)
        return targets

    def pick_api_host(self, rng: random.Random) -> HostProfile:
        """An API endpoint for polling traffic."""
        return rng.choice(self.api_hosts)

    def pick_video_host(self, rng: random.Random) -> HostProfile:
        """A video/streaming host."""
        return rng.choice(self.video_hosts)

    def host(self, hostname: str) -> HostProfile:
        """Look up a registered host profile by name."""
        try:
            return self.hosts[hostname]
        except KeyError as exc:
            raise WorkloadError(f"unknown hostname {hostname!r}") from exc
