"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing subsystem-specific failures when needed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DnsError(ReproError):
    """Base class for DNS subsystem errors."""


class NameError_(DnsError):
    """A domain name violates RFC 1035 length or syntax constraints.

    The trailing underscore avoids shadowing the ``NameError`` builtin.
    """


class WireFormatError(DnsError):
    """A DNS message could not be encoded to or decoded from wire format."""


class ZoneError(DnsError):
    """Authoritative zone data is inconsistent or a delegation is broken."""


class ResolutionError(DnsError):
    """A resolver could not produce an answer for a query."""


class PcapError(ReproError):
    """A pcap file or packet header could not be parsed or written."""


class SimulationError(ReproError):
    """The discrete-event simulation was driven incorrectly."""


class WorkloadError(ReproError):
    """A synthetic workload configuration is invalid."""


class LogFormatError(ReproError):
    """A monitor log line could not be parsed or serialized."""


class AnalysisError(ReproError):
    """The analysis pipeline was given inconsistent inputs."""


class CheckpointError(ReproError):
    """A streaming checkpoint could not be written, loaded, or resumed.

    Raised both for corrupt/truncated checkpoint files and for resume
    mismatches (a checkpoint written under a different streaming
    configuration, or against a different input trace).
    """


class SupervisionError(ReproError):
    """A supervised worker task was quarantined.

    Raised when a task exhausts its restart budget on failures the
    parent cannot safely retry serially (hangs, stalled heartbeats) or
    when its final serial retry fails for a non-library reason. The
    message names the offending task.
    """
