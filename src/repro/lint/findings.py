"""The finding data model shared by the engine, rules, baseline and CLI."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Any


class Severity(enum.Enum):
    """How seriously a finding affects the exit code.

    ``ERROR`` findings fail the run; ``WARNING`` findings are reported
    but only fail under ``--strict``.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a specific source location.

    ``line_text`` is the stripped source line the finding points at; the
    baseline matches on it (rather than the line number) so findings
    survive unrelated edits above them in the file.
    """

    rule_id: str
    path: Path
    line: int
    col: int
    message: str
    severity: Severity
    line_text: str

    def location(self) -> str:
        """The ``path:line:col`` prefix used in human output."""
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        """The one-line human-readable form of this finding."""
        return f"{self.location()}: {self.rule_id} [{self.severity}] {self.message}"

    def to_json_dict(self) -> dict[str, Any]:
        """A JSON-serialisable mapping describing this finding."""
        return {
            "rule": self.rule_id,
            "path": self.path.as_posix(),
            "line": self.line,
            "col": self.col,
            "severity": str(self.severity),
            "message": self.message,
            "line_text": self.line_text,
        }


def normalized_line(source_lines: list[str], line: int) -> str:
    """The stripped text of 1-based *line*, or ``""`` when out of range."""
    if 1 <= line <= len(source_lines):
        return source_lines[line - 1].strip()
    return ""
