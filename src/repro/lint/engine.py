"""The lint engine: file discovery, parsing, rule dispatch, suppression.

The engine is deliberately dependency-free: it walks files, parses each
one with :mod:`ast`, hands a :class:`FileContext` to every per-file
rule and (under ``whole_program=True``) a project-wide
:class:`~repro.lint.program.ProgramModel` to every program rule, and
filters the resulting findings through inline suppressions and, in the
CLI layer, the committed baseline.

An inline suppression is ``# repro-lint: disable=RULE <justification>``
— like baseline entries, a suppression without a justification does not
count: the finding is still reported. Suppressed findings are retained
on :attr:`LintRun.suppressed` so the CLI can account for them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import ReproError
from repro.lint.findings import Finding, Severity
from repro.lint.registry import ProgramRule, Rule, all_program_rules, all_rules

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=((?:[A-Za-z0-9_]+)(?:\s*,\s*[A-Za-z0-9_]+)*)[ \t]*(.*)$"
)


class LintConfigError(ReproError):
    """The linter was configured or driven incorrectly."""


@dataclass(frozen=True, slots=True)
class FileContext:
    """Everything a rule needs to know about one parsed source file."""

    path: Path
    module: str
    source: str
    lines: list[str]
    tree: ast.Module
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)

    def severity_for(self, rule: Rule) -> Severity:
        """*rule*'s severity after per-run overrides."""
        return self.severity_overrides.get(rule.rule_id, rule.default_severity)

    def in_package(self, *packages: str) -> bool:
        """Is this file inside any of the given dotted packages?"""
        return any(
            self.module == package or self.module.startswith(package + ".")
            for package in packages
        )


@dataclass(frozen=True, slots=True)
class LintRun:
    """The outcome of linting a set of paths.

    ``suppressed`` holds findings silenced by a *justified* inline
    pragma — kept for accounting (the CLI reports their count) so
    suppressions stay visible rather than vanishing.
    """

    findings: tuple[Finding, ...]
    files_checked: int
    suppressed: tuple[Finding, ...] = ()

    def errors(self) -> tuple[Finding, ...]:
        """The findings at :data:`Severity.ERROR`."""
        return tuple(f for f in self.findings if f.severity is Severity.ERROR)


def module_name_for(path: Path) -> str:
    """The dotted module path of *path*, derived from ``__init__.py`` files.

    Walks upward while the containing directory is a package, so
    ``src/repro/dns/cache.py`` maps to ``repro.dns.cache`` regardless of
    where the repository is checked out. A loose file maps to its stem.
    """
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    directory = resolved.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else resolved.stem


def parse_suppression(line_text: str) -> tuple[set[str], str] | None:
    """The ``(rule ids, justification)`` of a suppression on *line_text*.

    Returns ``None`` when there is no suppression comment; the special
    token ``all`` disables every rule on the line. The justification is
    whatever follows the rule list — it is mandatory for the
    suppression to take effect, mirroring the baseline's
    justified-entry contract.
    """
    match = _SUPPRESS_RE.search(line_text)
    if match is None:
        return None
    rules = {token.strip().upper() for token in match.group(1).split(",") if token.strip()}
    return rules, match.group(2).strip()


class LintEngine:
    """Runs a set of rules over files, sources, or directory trees."""

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        severity_overrides: Mapping[str, Severity] | None = None,
        program_rules: Sequence[ProgramRule] | None = None,
    ) -> None:
        self.rules: tuple[Rule, ...] = tuple(rules if rules is not None else all_rules())
        self.program_rules: tuple[ProgramRule, ...] = tuple(
            program_rules if program_rules is not None else all_program_rules()
        )
        self.severity_overrides: dict[str, Severity] = dict(severity_overrides or {})

    # -- entry points ----------------------------------------------------

    def lint_paths(self, paths: Iterable[Path | str], whole_program: bool = False) -> LintRun:
        """Lint every ``.py`` file in *paths* (files or directories).

        With ``whole_program=True`` the discovered files additionally
        form one :class:`~repro.lint.program.ProgramModel` over which
        every registered program rule (SHARED001/SHARED002/ALIAS001/
        UNIT002) runs — cross-module findings land on the file that
        defines the offending symbol.
        """
        findings: list[Finding] = []
        suppressed: list[Finding] = []
        contexts: list[FileContext] = []
        files = list(self._discover(paths))
        for file_path in files:
            source = file_path.read_text(encoding="utf-8")
            new, silenced, ctx = self._lint_context(
                source, file_path, module_name_for(file_path)
            )
            findings.extend(new)
            suppressed.extend(silenced)
            contexts.append(ctx)
        if whole_program and contexts:
            new, silenced = self._run_program_rules(contexts)
            findings.extend(new)
            suppressed.extend(silenced)
        order = lambda f: (f.path.as_posix(), f.line, f.col, f.rule_id)  # noqa: E731
        findings.sort(key=order)
        suppressed.sort(key=order)
        return LintRun(
            findings=tuple(findings),
            files_checked=len(files),
            suppressed=tuple(suppressed),
        )

    def lint_file(self, path: Path | str) -> list[Finding]:
        """Lint one file, deriving its module path from the filesystem."""
        file_path = Path(path)
        source = file_path.read_text(encoding="utf-8")
        return self.lint_source(source, file_path, module=module_name_for(file_path))

    def lint_source(self, source: str, path: Path | str, module: str | None = None) -> list[Finding]:
        """Lint *source* as if it lived at *path* in package *module*."""
        findings, _, _ = self._lint_context(source, Path(path), module)
        return findings

    # -- internals -------------------------------------------------------

    def _lint_context(
        self, source: str, file_path: Path, module: str | None
    ) -> tuple[list[Finding], list[Finding], FileContext]:
        """Per-file rule pass: ``(reported, suppressed, context)``."""
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as exc:
            raise LintConfigError(f"cannot parse {file_path}: {exc}") from exc
        ctx = FileContext(
            path=file_path,
            module=module if module is not None else file_path.stem,
            source=source,
            lines=source.splitlines(),
            tree=tree,
            severity_overrides=self.severity_overrides,
        )
        findings: list[Finding] = []
        suppressed: list[Finding] = []
        for rule in self.rules:
            for finding in rule.check(ctx):
                (suppressed if self._is_suppressed(finding, ctx) else findings).append(finding)
        return findings, suppressed, ctx

    def _run_program_rules(
        self, contexts: list[FileContext]
    ) -> tuple[list[Finding], list[Finding]]:
        """Whole-program rule pass over the already-parsed *contexts*."""
        from repro.lint.program import ProgramModel

        model = ProgramModel.build(contexts)
        ctx_by_path = {ctx.path: ctx for ctx in contexts}
        findings: list[Finding] = []
        suppressed: list[Finding] = []
        for rule in self.program_rules:
            for finding in rule.check_program(model):
                ctx = ctx_by_path.get(finding.path)
                if ctx is not None and self._is_suppressed(finding, ctx):
                    suppressed.append(finding)
                else:
                    findings.append(finding)
        return findings, suppressed

    def _is_suppressed(self, finding: Finding, ctx: FileContext) -> bool:
        if not 1 <= finding.line <= len(ctx.lines):
            return False
        parsed = parse_suppression(ctx.lines[finding.line - 1])
        if parsed is None:
            return False
        disabled, justification = parsed
        if not justification:
            return False  # unjustified pragmas do not count, like the baseline
        return "ALL" in disabled or finding.rule_id.upper() in disabled

    def _discover(self, paths: Iterable[Path | str]) -> Iterator[Path]:
        for entry in paths:
            path = Path(entry)
            if path.is_dir():
                yield from sorted(
                    candidate
                    for candidate in path.rglob("*.py")
                    if "__pycache__" not in candidate.parts
                )
            elif path.suffix == ".py":
                yield path
            elif not path.exists():
                raise LintConfigError(f"no such file or directory: {path}")
