"""The lint engine: file discovery, parsing, rule dispatch, suppression.

The engine is deliberately dependency-free: it walks files, parses each
one with :mod:`ast`, hands a :class:`FileContext` to every rule, and
filters the resulting findings through inline suppressions
(``# repro-lint: disable=RULE``) and, in the CLI layer, the committed
baseline.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import ReproError
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


class LintConfigError(ReproError):
    """The linter was configured or driven incorrectly."""


@dataclass(frozen=True, slots=True)
class FileContext:
    """Everything a rule needs to know about one parsed source file."""

    path: Path
    module: str
    source: str
    lines: list[str]
    tree: ast.Module
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)

    def severity_for(self, rule: Rule) -> Severity:
        """*rule*'s severity after per-run overrides."""
        return self.severity_overrides.get(rule.rule_id, rule.default_severity)

    def in_package(self, *packages: str) -> bool:
        """Is this file inside any of the given dotted packages?"""
        return any(
            self.module == package or self.module.startswith(package + ".")
            for package in packages
        )


@dataclass(frozen=True, slots=True)
class LintRun:
    """The outcome of linting a set of paths."""

    findings: tuple[Finding, ...]
    files_checked: int

    def errors(self) -> tuple[Finding, ...]:
        """The findings at :data:`Severity.ERROR`."""
        return tuple(f for f in self.findings if f.severity is Severity.ERROR)


def module_name_for(path: Path) -> str:
    """The dotted module path of *path*, derived from ``__init__.py`` files.

    Walks upward while the containing directory is a package, so
    ``src/repro/dns/cache.py`` maps to ``repro.dns.cache`` regardless of
    where the repository is checked out. A loose file maps to its stem.
    """
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    directory = resolved.parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else resolved.stem


def _suppressed_rules(line_text: str) -> set[str] | None:
    """Rule ids disabled by an inline comment on *line_text*.

    Returns ``None`` when there is no suppression comment; the special
    token ``all`` suppresses every rule on the line.
    """
    match = _SUPPRESS_RE.search(line_text)
    if match is None:
        return None
    return {token.strip().upper() for token in match.group(1).split(",") if token.strip()}


class LintEngine:
    """Runs a set of rules over files, sources, or directory trees."""

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        severity_overrides: Mapping[str, Severity] | None = None,
    ) -> None:
        self.rules: tuple[Rule, ...] = tuple(rules if rules is not None else all_rules())
        self.severity_overrides: dict[str, Severity] = dict(severity_overrides or {})

    # -- entry points ----------------------------------------------------

    def lint_paths(self, paths: Iterable[Path | str]) -> LintRun:
        """Lint every ``.py`` file in *paths* (files or directories)."""
        findings: list[Finding] = []
        files = list(self._discover(paths))
        for file_path in files:
            findings.extend(self.lint_file(file_path))
        findings.sort(key=lambda f: (f.path.as_posix(), f.line, f.col, f.rule_id))
        return LintRun(findings=tuple(findings), files_checked=len(files))

    def lint_file(self, path: Path | str) -> list[Finding]:
        """Lint one file, deriving its module path from the filesystem."""
        file_path = Path(path)
        source = file_path.read_text(encoding="utf-8")
        return self.lint_source(source, file_path, module=module_name_for(file_path))

    def lint_source(self, source: str, path: Path | str, module: str | None = None) -> list[Finding]:
        """Lint *source* as if it lived at *path* in package *module*."""
        file_path = Path(path)
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as exc:
            raise LintConfigError(f"cannot parse {file_path}: {exc}") from exc
        ctx = FileContext(
            path=file_path,
            module=module if module is not None else file_path.stem,
            source=source,
            lines=source.splitlines(),
            tree=tree,
            severity_overrides=self.severity_overrides,
        )
        findings: list[Finding] = []
        for rule in self.rules:
            findings.extend(rule.check(ctx))
        return [f for f in findings if not self._is_suppressed(f, ctx)]

    # -- internals -------------------------------------------------------

    def _is_suppressed(self, finding: Finding, ctx: FileContext) -> bool:
        if not 1 <= finding.line <= len(ctx.lines):
            return False
        disabled = _suppressed_rules(ctx.lines[finding.line - 1])
        if disabled is None:
            return False
        return "ALL" in disabled or finding.rule_id.upper() in disabled

    def _discover(self, paths: Iterable[Path | str]) -> Iterator[Path]:
        for entry in paths:
            path = Path(entry)
            if path.is_dir():
                yield from sorted(
                    candidate
                    for candidate in path.rglob("*.py")
                    if "__pycache__" not in candidate.parts
                )
            elif path.suffix == ".py":
                yield path
            elif not path.exists():
                raise LintConfigError(f"no such file or directory: {path}")
