"""Rule base classes and the global rule registries.

Rules register themselves with :func:`register_rule` (per-file rules)
or :func:`register_program_rule` (whole-program rules) at import time;
:mod:`repro.lint.rules` imports every built-in rule module so that
``all_rules()`` / ``all_program_rules()`` are complete after
``import repro.lint``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator, Type, TypeVar

from repro.lint.findings import Finding, Severity, normalized_line

if TYPE_CHECKING:
    from repro.lint.engine import FileContext
    from repro.lint.program import ProgramModel


class Rule:
    """Base class for a lint rule.

    Subclasses set ``rule_id``, ``title`` and ``default_severity`` and
    implement :meth:`check`, yielding findings for one parsed file.
    """

    rule_id: str = ""
    title: str = ""
    default_severity: Severity = Severity.ERROR

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        """Yield findings for *ctx*; subclasses must override."""
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` for *node* with this rule's id and severity."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule_id=self.rule_id,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
            severity=ctx.severity_for(self),
            line_text=normalized_line(ctx.lines, line),
        )


class ProgramRule:
    """Base class for a whole-program lint rule.

    Program rules run once over the project-wide
    :class:`~repro.lint.program.ProgramModel` instead of per file, so
    they can reason across module boundaries (fork reachability, unit
    dataflow through calls). Subclasses set ``rule_id``, ``title`` and
    ``default_severity`` and implement :meth:`check_program`.
    """

    rule_id: str = ""
    title: str = ""
    default_severity: Severity = Severity.ERROR

    def check_program(self, model: "ProgramModel") -> Iterator[Finding]:
        """Yield findings for *model*; subclasses must override."""
        raise NotImplementedError

    def finding(
        self, model: "ProgramModel", module: str, node: ast.AST, message: str
    ) -> Finding:
        """A :class:`Finding` for *node* in *module* with this rule's id."""
        ctx = model.context_for(module)
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule_id=self.rule_id,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
            severity=ctx.severity_for(self),
            line_text=normalized_line(ctx.lines, line),
        )


_REGISTRY: dict[str, Type[Rule]] = {}  # repro-lint: fork-shared(grows once per rule class at import time, bounded by the module's decorated classes)
_PROGRAM_REGISTRY: dict[str, Type[ProgramRule]] = {}  # repro-lint: fork-shared(grows once per rule class at import time, bounded by the module's decorated classes)

R = TypeVar("R", bound=Type[Rule])
P = TypeVar("P", bound=Type[ProgramRule])


def register_rule(rule_class: R) -> R:
    """Class decorator adding *rule_class* to the per-file registry."""
    rule_id = rule_class.rule_id
    if not rule_id:
        raise ValueError(f"{rule_class.__name__} does not define rule_id")
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = rule_class
    return rule_class


def register_program_rule(rule_class: P) -> P:
    """Class decorator adding *rule_class* to the whole-program registry."""
    rule_id = rule_class.rule_id
    if not rule_id:
        raise ValueError(f"{rule_class.__name__} does not define rule_id")
    existing = _PROGRAM_REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    if rule_id in _REGISTRY:
        raise ValueError(f"rule id {rule_id!r} already taken by a per-file rule")
    _PROGRAM_REGISTRY[rule_id] = rule_class
    return rule_class


def known_rule_ids() -> set[str]:
    """Every registered rule id, per-file and whole-program."""
    return set(_REGISTRY) | set(_PROGRAM_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    """An instance of the registered per-file rule with *rule_id*."""
    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}") from None


def get_program_rule(rule_id: str) -> ProgramRule:
    """An instance of the registered whole-program rule with *rule_id*."""
    try:
        return _PROGRAM_REGISTRY[rule_id]()
    except KeyError:
        raise KeyError(
            f"unknown program rule {rule_id!r}; known: {sorted(_PROGRAM_REGISTRY)}"
        ) from None


def _validate_requested(select: Iterable[str] | None, ignore: Iterable[str] | None) -> None:
    known = known_rule_ids()
    for requested in (set(select or ()) | set(ignore or ())) - known:
        raise KeyError(f"unknown rule {requested!r}; known: {sorted(known)}")


def all_rules(select: Iterable[str] | None = None, ignore: Iterable[str] | None = None) -> list[Rule]:
    """Instances of every registered per-file rule, optionally filtered.

    *select* keeps only the named rules; *ignore* drops the named rules.
    Ids unknown to *both* registries raise :class:`KeyError` so typos in
    CLI flags fail loudly (a program-rule id is valid here but selects
    no per-file rule).
    """
    _validate_requested(select, ignore)
    chosen = set(select) & set(_REGISTRY) if select else set(_REGISTRY)
    chosen -= set(ignore or ())
    return [_REGISTRY[rule_id]() for rule_id in sorted(chosen)]


def all_program_rules(
    select: Iterable[str] | None = None, ignore: Iterable[str] | None = None
) -> list[ProgramRule]:
    """Instances of every registered whole-program rule, optionally filtered."""
    _validate_requested(select, ignore)
    chosen = set(select) & set(_PROGRAM_REGISTRY) if select else set(_PROGRAM_REGISTRY)
    chosen -= set(ignore or ())
    return [_PROGRAM_REGISTRY[rule_id]() for rule_id in sorted(chosen)]
