"""Rule base class and the global rule registry.

Rules register themselves with :func:`register_rule` at import time;
:mod:`repro.lint.rules` imports every built-in rule module so that
``all_rules()`` is complete after ``import repro.lint``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator, Type, TypeVar

from repro.lint.findings import Finding, Severity, normalized_line

if TYPE_CHECKING:
    from repro.lint.engine import FileContext


class Rule:
    """Base class for a lint rule.

    Subclasses set ``rule_id``, ``title`` and ``default_severity`` and
    implement :meth:`check`, yielding findings for one parsed file.
    """

    rule_id: str = ""
    title: str = ""
    default_severity: Severity = Severity.ERROR

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        """Yield findings for *ctx*; subclasses must override."""
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` for *node* with this rule's id and severity."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule_id=self.rule_id,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
            severity=ctx.severity_for(self),
            line_text=normalized_line(ctx.lines, line),
        )


_REGISTRY: dict[str, Type[Rule]] = {}

R = TypeVar("R", bound=Type[Rule])


def register_rule(rule_class: R) -> R:
    """Class decorator adding *rule_class* to the global registry."""
    rule_id = rule_class.rule_id
    if not rule_id:
        raise ValueError(f"{rule_class.__name__} does not define rule_id")
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    _REGISTRY[rule_id] = rule_class
    return rule_class


def get_rule(rule_id: str) -> Rule:
    """An instance of the registered rule with *rule_id*."""
    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}") from None


def all_rules(select: Iterable[str] | None = None, ignore: Iterable[str] | None = None) -> list[Rule]:
    """Instances of every registered rule, optionally filtered.

    *select* keeps only the named rules; *ignore* drops the named rules.
    Unknown ids in either set raise :class:`KeyError` so typos in CLI
    flags fail loudly.
    """
    known = set(_REGISTRY)
    for requested in (set(select or ()) | set(ignore or ())) - known:
        raise KeyError(f"unknown rule {requested!r}; known: {sorted(known)}")
    chosen = set(select) if select else known
    chosen -= set(ignore or ())
    return [_REGISTRY[rule_id]() for rule_id in sorted(chosen)]
