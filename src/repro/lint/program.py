"""Whole-program model: symbol table, call graph, fork reachability.

Per-file AST rules cannot see the defects that sharded execution
creates: a module-level fan-out slot clobbered by a nested call, a memo
dict growing without bound across scenarios, an attribute rebinding that
detaches an alias held by another method, a milliseconds value flowing
into a ``_s`` parameter two modules away. This module builds the
project-wide context those rules need:

* a **symbol table** of module-level slots (mutable containers and
  rebindable globals) with every read, growth, shrink and rebind site
  attributed to the function performing it;
* an approximate **call graph** over every function and method, using
  import-aware name resolution plus a class-hierarchy-less fallback for
  method calls on unknown receivers (``pairer.pair_all()`` links to any
  program class defining ``pair_all``);
* the set of **fork roots** — callables handed to
  ``multiprocessing.Pool`` dispatch methods, pool initializers, or the
  fan-out entry points in :mod:`repro.core.parallel` — and the functions
  **fork-reachable** from them;
* per-class **attribute aliasing** facts (which methods rebind
  ``self._x`` to a fresh container, which methods hold a local alias of
  or iterate ``self._x``).

Audited shared state is declared inline on its definition line with
``# repro-lint: fork-shared(<why>)``; the justification is mandatory.
The model is purely syntactic and deliberately over-approximate: it
never executes code, and an unresolvable call simply contributes no
edge (or, for method calls, a name-matched approximation).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:
    from repro.lint.engine import FileContext

_FORK_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*fork-shared\(([^)]*)\)")

#: Container methods that grow their receiver.
_GROW_METHODS = frozenset(
    {"add", "append", "appendleft", "extend", "insert", "setdefault", "update"}
)

#: Container methods that shrink (or empty) their receiver.
_SHRINK_METHODS = frozenset(
    {"clear", "discard", "pop", "popitem", "popleft", "remove"}
)

#: Callables whose result is a fresh mutable container.
_CONTAINER_FACTORIES = frozenset(
    {"Counter", "OrderedDict", "defaultdict", "deque", "dict", "list", "set", "sorted"}
)

#: ``multiprocessing.Pool`` dispatch methods whose callable argument
#: executes in a worker process.
_POOL_DISPATCH = frozenset(
    {"apply", "apply_async", "imap", "imap_unordered", "map", "map_async", "starmap", "starmap_async"}
)

#: In-repo fan-out entry points: qualname -> (positional index, keyword
#: name) of the callable parameter that runs in fork workers.
FORK_DISPATCHERS: dict[str, tuple[int, str]] = {
    "repro.core.parallel.run_scenarios": (1, "task"),
}

#: Method names that belong to builtin containers/strings; an unknown
#: receiver calling one of these is almost never a program method, so
#: the name-matched fallback skips them to keep the call graph tight.
_BUILTIN_METHOD_NAMES = frozenset(
    {
        "add", "append", "appendleft", "capitalize", "clear", "copy", "count",
        "decode", "discard", "encode", "endswith", "extend", "format", "get",
        "index", "insert", "intersection", "isdigit", "items", "join", "keys",
        "lower", "lstrip", "pop", "popitem", "popleft", "remove", "replace",
        "reverse", "rstrip", "setdefault", "sort", "split", "splitlines",
        "startswith", "strip", "title", "union", "update", "upper", "values",
    }
)


def _fork_pragma(line_text: str) -> tuple[bool, str]:
    """``(present, justification)`` of a fork-shared pragma on *line_text*."""
    match = _FORK_PRAGMA_RE.search(line_text)
    if match is None:
        return False, ""
    return True, match.group(1).strip()


def _is_fresh_container(node: ast.expr) -> bool:
    """Does *node* evaluate to a brand-new container object?"""
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _CONTAINER_FACTORIES
    return False


def _is_mutable_container_value(node: ast.expr | None) -> bool:
    """Is a module-level assignment's value a mutable container?"""
    return node is not None and _is_fresh_container(node)


@dataclass(slots=True)
class AccessSite:
    """One function's access to a module-level slot."""

    function: str  # qualname of the accessor ("<module>" for module level)
    node: ast.AST


@dataclass(slots=True)
class GlobalSlot:
    """One module-level binding and everything the program does to it."""

    module: str
    name: str
    node: ast.AST
    line_text: str
    is_container: bool
    pragma: bool = False
    pragma_reason: str = ""
    read_by: list[AccessSite] = field(default_factory=list)
    grown_by: list[AccessSite] = field(default_factory=list)
    shrunk_by: list[AccessSite] = field(default_factory=list)
    rebound_by: list[AccessSite] = field(default_factory=list)

    @property
    def qualname(self) -> str:
        """Dotted ``module.name`` of this slot."""
        return f"{self.module}.{self.name}"

    def accessors(self) -> set[str]:
        """Qualnames of every function touching this slot."""
        return {
            site.function
            for sites in (self.read_by, self.grown_by, self.shrunk_by, self.rebound_by)
            for site in sites
        }

    def mutators(self) -> set[str]:
        """Qualnames of functions that mutate or rebind this slot."""
        return {
            site.function
            for sites in (self.grown_by, self.shrunk_by, self.rebound_by)
            for site in sites
        }


@dataclass(slots=True)
class CallSite:
    """One call expression inside a function body.

    ``target`` is the resolved callee qualname (possibly external, e.g.
    ``random.Random``) or None; ``exact`` is False for the name-matched
    method fallback, whose argument bindings are too fuzzy for dataflow.
    ``via_attribute`` distinguishes ``obj.m(...)`` (positional args bind
    after ``self``) from plain ``f(...)``.
    """

    node: ast.Call
    target: str | None
    exact: bool
    via_attribute: bool
    extra_targets: tuple[str, ...] = ()


@dataclass(slots=True)
class FunctionInfo:
    """One function or method in the program."""

    qualname: str
    module: str
    name: str
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: list[str] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)


@dataclass(slots=True)
class AttributeUse:
    """One method's use of a ``self.<attr>`` slot."""

    method: str  # bare method name
    node: ast.AST


@dataclass(slots=True)
class ClassInfo:
    """One class: its methods and how they treat ``self`` attributes."""

    qualname: str
    module: str
    name: str
    methods: dict[str, str] = field(default_factory=dict)  # bare name -> qualname
    #: attr -> rebinds of ``self.attr`` to a fresh container outside __init__
    attr_rebinds: dict[str, list[AttributeUse]] = field(default_factory=dict)
    #: attr -> ``local = self.attr`` alias bindings
    attr_aliases: dict[str, list[AttributeUse]] = field(default_factory=dict)
    #: attr -> ``for .. in self.attr`` / ``while self.attr`` iteration sites
    attr_iterations: dict[str, list[AttributeUse]] = field(default_factory=dict)


class _ModuleImports:
    """Import tables of one module: local name -> module / (module, attr)."""

    def __init__(self, tree: ast.Module) -> None:
        self.modules: dict[str, str] = {}
        self.objects: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    dotted = alias.name if alias.asname else alias.name.split(".")[0]
                    self.modules[local] = dotted
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.objects[alias.asname or alias.name] = (node.module, alias.name)


def _local_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[set[str], set[str]]:
    """``(locals, globals)`` bound inside *func* (excluding nested defs)."""
    declared_global: set[str] = set()
    bound: set[str] = set()
    arguments = func.args
    for arg in (
        *arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs,
        *(a for a in (arguments.vararg, arguments.kwarg) if a is not None),
    ):
        bound.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            bound.add(node.name)
    return bound - declared_global, declared_global


class ProgramModel:
    """The project-wide symbol table, call graph and fork-reachability set."""

    def __init__(self) -> None:
        self.modules: dict[str, FileContext] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.slots: dict[str, GlobalSlot] = {}  # "module.name" -> slot
        self.call_edges: dict[str, set[str]] = {}
        self.fork_roots: set[str] = set()
        self.fork_reachable: set[str] = set()
        self._imports: dict[str, _ModuleImports] = {}
        self._methods_by_name: dict[str, list[str]] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, contexts: Iterable[FileContext]) -> "ProgramModel":
        """Build the model over *contexts* (one per parsed source file)."""
        model = cls()
        ordered = sorted(contexts, key=lambda ctx: ctx.module)
        for ctx in ordered:
            model._index_module(ctx)
        for ctx in ordered:
            model._scan_module(ctx)
        model._compute_reachability()
        return model

    def context_for(self, module: str) -> FileContext:
        """The :class:`FileContext` of *module*."""
        return self.modules[module]

    def _index_module(self, ctx: FileContext) -> None:
        """First pass: declare every function, class and module slot."""
        self.modules[ctx.module] = ctx
        self._imports[ctx.module] = _ModuleImports(ctx.tree)
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._declare_function(ctx.module, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                info = ClassInfo(
                    qualname=f"{ctx.module}.{stmt.name}", module=ctx.module, name=stmt.name
                )
                self.classes[info.qualname] = info
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        declared = self._declare_function(ctx.module, item, class_name=stmt.name)
                        info.methods[item.name] = declared.qualname
                        self._methods_by_name.setdefault(item.name, []).append(declared.qualname)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._declare_slot(ctx, stmt)

    def _declare_function(
        self,
        module: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> FunctionInfo:
        qualname = (
            f"{module}.{class_name}.{node.name}" if class_name else f"{module}.{node.name}"
        )
        arguments = node.args
        params = [
            arg.arg
            for arg in (*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs)
        ]
        info = FunctionInfo(
            qualname=qualname,
            module=module,
            name=node.name,
            class_name=class_name,
            node=node,
            params=params,
        )
        self.functions[qualname] = info
        return info

    def _declare_slot(self, ctx: FileContext, stmt: ast.Assign | ast.AnnAssign) -> None:
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        value = stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            line_text = ctx.lines[stmt.lineno - 1] if stmt.lineno <= len(ctx.lines) else ""
            pragma, reason = _fork_pragma(line_text)
            self.slots[f"{ctx.module}.{target.id}"] = GlobalSlot(
                module=ctx.module,
                name=target.id,
                node=stmt,
                line_text=line_text.strip(),
                is_container=_is_mutable_container_value(value),
                pragma=pragma,
                pragma_reason=reason,
            )

    # -- second pass: function bodies ------------------------------------

    def _scan_module(self, ctx: FileContext) -> None:
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(ctx, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._scan_function(ctx, item, class_name=stmt.name)

    def _scan_function(
        self,
        ctx: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> None:
        qualname = (
            f"{ctx.module}.{class_name}.{func.name}" if class_name else f"{ctx.module}.{func.name}"
        )
        info = self.functions[qualname]
        imports = self._imports[ctx.module]
        local, declared_global = _local_names(func)
        edges = self.call_edges.setdefault(qualname, set())

        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                site = self._resolve_call(node, ctx.module, imports, class_name)
                info.calls.append(site)
                for target in (site.target, *site.extra_targets):
                    if target is not None and target in self.functions:
                        edges.add(target)
                    elif target is not None and f"{target}.__init__" in self.functions:
                        edges.add(f"{target}.__init__")
                self._note_fork_dispatch(node, site, ctx.module, imports, class_name)
            elif isinstance(node, ast.Name):
                self._note_slot_name(node, qualname, ctx.module, imports, local, declared_global)
            elif isinstance(node, ast.Global):
                continue
            if class_name is not None:
                self._note_attribute_use(node, ctx.module, class_name, func.name)

        self._note_slot_mutations(func, qualname, ctx.module, imports, local, declared_global)

    # -- slot accounting -------------------------------------------------

    def _slot_for_name(
        self,
        name: str,
        module: str,
        imports: _ModuleImports,
        local: set[str],
        declared_global: set[str],
    ) -> GlobalSlot | None:
        if name in local:
            return None
        if name in declared_global or name not in imports.objects:
            slot = self.slots.get(f"{module}.{name}")
            if slot is not None:
                return slot
        bound = imports.objects.get(name)
        if bound is not None:
            return self.slots.get(f"{bound[0]}.{bound[1]}")
        return None

    def _note_slot_name(
        self,
        node: ast.Name,
        function: str,
        module: str,
        imports: _ModuleImports,
        local: set[str],
        declared_global: set[str],
    ) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        slot = self._slot_for_name(node.id, module, imports, local, declared_global)
        if slot is not None:
            slot.read_by.append(AccessSite(function=function, node=node))

    def _note_slot_mutations(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        module: str,
        imports: _ModuleImports,
        local: set[str],
        declared_global: set[str],
    ) -> None:
        def slot_of(expr: ast.expr) -> GlobalSlot | None:
            if isinstance(expr, ast.Name):
                return self._slot_for_name(expr.id, module, imports, local, declared_global)
            return None

        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id in declared_global:
                        slot = self.slots.get(f"{module}.{target.id}")
                        if slot is not None:
                            slot.rebound_by.append(AccessSite(function=qualname, node=node))
                    elif isinstance(target, ast.Subscript):
                        slot = slot_of(target.value)
                        if slot is not None:
                            slot.grown_by.append(AccessSite(function=qualname, node=node))
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if node.target.id in declared_global:
                    slot = self.slots.get(f"{module}.{node.target.id}")
                    if slot is not None:
                        slot.rebound_by.append(AccessSite(function=qualname, node=node))
            elif isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Name) and target.id in declared_global:
                    slot = self.slots.get(f"{module}.{target.id}")
                    if slot is not None:
                        slot.rebound_by.append(AccessSite(function=qualname, node=node))
                elif isinstance(target, ast.Subscript):
                    slot = slot_of(target.value)
                    if slot is not None:
                        slot.grown_by.append(AccessSite(function=qualname, node=node))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        slot = slot_of(target.value)
                        if slot is not None:
                            slot.shrunk_by.append(AccessSite(function=qualname, node=node))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                slot = slot_of(node.func.value)
                if slot is not None:
                    if node.func.attr in _GROW_METHODS:
                        slot.grown_by.append(AccessSite(function=qualname, node=node))
                    elif node.func.attr in _SHRINK_METHODS:
                        slot.shrunk_by.append(AccessSite(function=qualname, node=node))

    # -- attribute aliasing (ALIAS001 facts) -----------------------------

    @staticmethod
    def _self_attr(expr: ast.expr) -> str | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        return None

    def _note_attribute_use(
        self, node: ast.AST, module: str, class_name: str, method: str
    ) -> None:
        info = self.classes[f"{module}.{class_name}"]
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            attr = self._self_attr(target)
            if (
                attr is not None
                and _is_fresh_container(node.value)
                and method not in ("__init__", "__new__", "__post_init__")
            ):
                info.attr_rebinds.setdefault(attr, []).append(
                    AttributeUse(method=method, node=node)
                )
            value_attr = self._self_attr(node.value)
            if value_attr is not None and isinstance(target, ast.Name):
                info.attr_aliases.setdefault(value_attr, []).append(
                    AttributeUse(method=method, node=node)
                )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            attr = self._self_attr(node.iter)
            if attr is not None:
                info.attr_iterations.setdefault(attr, []).append(
                    AttributeUse(method=method, node=node)
                )
        elif isinstance(node, ast.While):
            attr = self._self_attr(node.test)
            if attr is not None:
                info.attr_iterations.setdefault(attr, []).append(
                    AttributeUse(method=method, node=node)
                )

    # -- call resolution -------------------------------------------------

    def resolve_callable_ref(
        self,
        expr: ast.expr,
        module: str,
        class_name: str | None = None,
    ) -> str | None:
        """The qualname a Name/Attribute reference resolves to, if any.

        Resolution is import-aware and may return external dotted names
        (``random.Random``) — callers check membership in
        :attr:`functions` / :attr:`classes` when they need an in-program
        target.
        """
        imports = self._imports[module]
        if isinstance(expr, ast.Name):
            name = expr.id
            if f"{module}.{name}" in self.functions:
                return f"{module}.{name}"
            if f"{module}.{name}" in self.classes:
                return f"{module}.{name}"
            bound = imports.objects.get(name)
            if bound is not None:
                return f"{bound[0]}.{bound[1]}"
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            base = expr.value.id
            if base in ("self", "cls") and class_name is not None:
                candidate = f"{module}.{class_name}.{expr.attr}"
                if candidate in self.functions:
                    return candidate
                return None
            dotted_base = imports.modules.get(base)
            if dotted_base is not None:
                return f"{dotted_base}.{expr.attr}"
            if f"{module}.{base}" in self.classes:
                candidate = f"{module}.{base}.{expr.attr}"
                if candidate in self.functions:
                    return candidate
            bound = imports.objects.get(base)
            if bound is not None:
                return f"{bound[0]}.{bound[1]}.{expr.attr}"
        return None

    def _resolve_call(
        self,
        node: ast.Call,
        module: str,
        imports: _ModuleImports,
        class_name: str | None,
    ) -> CallSite:
        func = node.func
        target = self.resolve_callable_ref(func, module, class_name)
        via_attribute = isinstance(func, ast.Attribute)
        if target is not None:
            resolved = target
            if target in self.classes:
                resolved = f"{target}.__init__"
                via_attribute = True  # constructor args bind after self
            return CallSite(node=node, target=resolved, exact=True, via_attribute=via_attribute)
        # Name-matched fallback for method calls on unknown receivers:
        # link to every program class defining this method name, except
        # names that collide with builtin container/string methods.
        if isinstance(func, ast.Attribute) and func.attr not in _BUILTIN_METHOD_NAMES:
            candidates = tuple(self._methods_by_name.get(func.attr, ()))
            if candidates:
                return CallSite(
                    node=node,
                    target=candidates[0],
                    exact=False,
                    via_attribute=True,
                    extra_targets=candidates[1:],
                )
        return CallSite(node=node, target=None, exact=False, via_attribute=via_attribute)

    # -- fork roots ------------------------------------------------------

    def _note_fork_dispatch(
        self,
        node: ast.Call,
        site: CallSite,
        module: str,
        imports: _ModuleImports,
        class_name: str | None,
    ) -> None:
        def root_from(expr: ast.expr) -> None:
            target = self.resolve_callable_ref(expr, module, class_name)
            if target is None:
                return
            if target in self.functions:
                self.fork_roots.add(target)
            elif f"{target}.__call__" in self.functions:
                self.fork_roots.add(f"{target}.__call__")

        # pool.apply_async(f, ...) and friends — receiver identity unknown,
        # but the method-name vocabulary is specific enough.
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _POOL_DISPATCH:
            if node.args:
                root_from(node.args[0])
            for keyword in node.keywords:
                if keyword.arg == "func":
                    root_from(keyword.value)
        # Pool(initializer=f) — any call carrying an initializer keyword.
        for keyword in node.keywords:
            if keyword.arg == "initializer":
                root_from(keyword.value)
        # In-repo fan-out entry points (repro.core.parallel.run_scenarios).
        dispatcher = FORK_DISPATCHERS.get(site.target or "")
        if dispatcher is not None:
            index, keyword_name = dispatcher
            if len(node.args) > index:
                root_from(node.args[index])
            for keyword in node.keywords:
                if keyword.arg == keyword_name:
                    root_from(keyword.value)

    def _compute_reachability(self) -> None:
        seen: set[str] = set(self.fork_roots)
        frontier = list(self.fork_roots)
        while frontier:
            current = frontier.pop()
            for callee in self.call_edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        self.fork_reachable = seen

    # -- queries used by rules -------------------------------------------

    def fork_reachable_accessors(self, slot: GlobalSlot) -> list[str]:
        """Fork-reachable functions that touch *slot*, sorted."""
        return sorted(slot.accessors() & self.fork_reachable)

    def iter_slots(self) -> Iterator[GlobalSlot]:
        """Every module-level slot, in deterministic order."""
        for qualname in sorted(self.slots):
            yield self.slots[qualname]

    def iter_classes(self) -> Iterator[ClassInfo]:
        """Every class, in deterministic order."""
        for qualname in sorted(self.classes):
            yield self.classes[qualname]

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every function, in deterministic order."""
        for qualname in sorted(self.functions):
            yield self.functions[qualname]


def build_program(contexts: Sequence[FileContext]) -> ProgramModel:
    """Convenience wrapper: the :class:`ProgramModel` over *contexts*."""
    return ProgramModel.build(contexts)
