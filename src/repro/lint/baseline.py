"""Committed baseline of grandfathered findings.

A baseline entry matches findings by ``(rule, path, stripped source
line)`` rather than by line number, so a baselined finding stays
baselined when unrelated code moves above it. Every entry must carry a
non-empty justification — the baseline is a ledger of conscious
decisions, not a mute button.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import ReproError
from repro.lint.findings import Finding

BASELINE_FILENAME = "lint-baseline.json"
_FORMAT_VERSION = 1


class BaselineError(ReproError):
    """A baseline file is malformed or missing required fields."""


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One grandfathered finding pattern.

    ``count`` is the number of occurrences of ``line_text`` in ``path``
    that the entry covers (a single line can legitimately trip the same
    rule more than once, e.g. two unsuffixed parameters on one line).
    """

    rule: str
    path: str
    line_text: str
    justification: str
    count: int = 1

    def key(self) -> tuple[str, str, str]:
        """The matching key shared with findings."""
        return (self.rule, self.path, self.line_text)


class Baseline:
    """A set of grandfathered findings loaded from ``lint-baseline.json``."""

    def __init__(self, entries: Iterable[BaselineEntry] = (), root: Path | None = None) -> None:
        self.root = root
        self._budget: Counter[tuple[str, str, str]] = Counter()
        self.entries: list[BaselineEntry] = list(entries)
        for entry in self.entries:
            if not entry.justification.strip():
                raise BaselineError(
                    f"baseline entry for {entry.rule} at {entry.path} has no justification"
                )
            self._budget[entry.key()] += entry.count

    # -- persistence -----------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file written by :meth:`save` (or by hand)."""
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
            raise BaselineError(f"{path}: expected a version-{_FORMAT_VERSION} baseline object")
        entries = []
        for raw in payload.get("entries", []):
            try:
                entries.append(
                    BaselineEntry(
                        rule=raw["rule"],
                        path=raw["path"],
                        line_text=raw["line_text"],
                        justification=raw["justification"],
                        count=int(raw.get("count", 1)),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise BaselineError(f"{path}: malformed baseline entry {raw!r}") from exc
        return cls(entries, root=path.parent.resolve())

    def save(self, path: Path) -> None:
        """Write this baseline as deterministic, diff-friendly JSON."""
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "line_text": entry.line_text,
                    "count": entry.count,
                    "justification": entry.justification,
                }
                for entry in sorted(self.entries, key=lambda e: (e.path, e.rule, e.line_text))
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # -- matching --------------------------------------------------------

    def _finding_key(self, finding: Finding) -> tuple[str, str, str]:
        path = finding.path
        if self.root is not None:
            try:
                path = path.resolve().relative_to(self.root)
            except ValueError:
                pass
        return (finding.rule_id, path.as_posix(), finding.line_text)

    def filter(self, findings: Iterable[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Split *findings* into (new, baselined).

        Each entry absorbs at most ``count`` matching findings; any
        excess beyond the budget is reported as new, so regressions on
        an already-baselined line still fail.
        """
        budget = Counter(self._budget)
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            key = self._finding_key(finding)
            if budget[key] > 0:
                budget[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined

    def prune_stale(self) -> tuple["Baseline", list[BaselineEntry]]:
        """Split into ``(pruned baseline, stale entries)``.

        An entry is stale when its ``line_text`` no longer appears in
        its file (the grandfathered code was fixed or deleted) — such
        entries can never match a finding again and only hide future
        regressions that happen to produce the same key. An entry whose
        line occurs fewer times than its ``count`` budget is shrunk to
        the surviving occurrence count and also reported as stale.
        """
        root = self.root if self.root is not None else Path(".")
        kept: list[BaselineEntry] = []
        stale: list[BaselineEntry] = []
        for entry in self.entries:
            path = root / entry.path
            try:
                lines = path.read_text(encoding="utf-8").splitlines()
            except OSError:
                stale.append(entry)
                continue
            occurrences = sum(1 for line in lines if line.strip() == entry.line_text)
            if occurrences == 0:
                stale.append(entry)
            elif occurrences < entry.count:
                stale.append(entry)
                kept.append(
                    BaselineEntry(
                        rule=entry.rule,
                        path=entry.path,
                        line_text=entry.line_text,
                        justification=entry.justification,
                        count=occurrences,
                    )
                )
            else:
                kept.append(entry)
        return Baseline(kept, root=self.root), stale

    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Finding],
        root: Path,
        justification: str = "TODO: justify or fix",
        previous: "Baseline | None" = None,
    ) -> "Baseline":
        """A baseline covering *findings*, keeping justifications from *previous*."""
        kept: dict[tuple[str, str, str], str] = {}
        if previous is not None:
            for entry in previous.entries:
                kept[entry.key()] = entry.justification
        counts: Counter[tuple[str, str, str]] = Counter()
        for finding in findings:
            path = finding.path
            try:
                path = path.resolve().relative_to(root.resolve())
            except ValueError:
                pass
            counts[(finding.rule_id, path.as_posix(), finding.line_text)] += 1
        entries = [
            BaselineEntry(
                rule=rule,
                path=path,
                line_text=line_text,
                justification=kept.get((rule, path, line_text), justification),
                count=count,
            )
            for (rule, path, line_text), count in counts.items()
        ]
        return cls(entries, root=root.resolve())


def discover_baseline(start: Path) -> Path | None:
    """The nearest ``lint-baseline.json`` at or above *start*, if any."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / BASELINE_FILENAME
        if candidate.is_file():
            return candidate
    return None
