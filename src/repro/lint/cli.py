"""``repro-lint`` command-line interface.

Exit codes::

    0   no new findings (baselined/suppressed findings are fine)
    1   at least one new finding at error severity (any severity with --strict)
    2   usage or configuration error (bad rule id, unreadable baseline, ...)

Examples::

    repro-lint src/repro
    repro-lint src/repro --whole-program       # + cross-module analysis
    repro-lint src/repro --format json | jq '.summary'
    repro-lint src/repro --whole-program --format sarif > lint.sarif
    repro-lint src/repro --write-baseline      # grandfather current findings
    repro-lint src/repro --prune-baseline      # drop stale baseline entries
    repro-lint src/repro --no-baseline --strict
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.errors import ReproError
from repro.lint.baseline import BASELINE_FILENAME, Baseline, discover_baseline
from repro.lint.engine import LintEngine
from repro.lint.findings import Finding, Severity
from repro.lint.registry import all_program_rules, all_rules

_JSON_FORMAT_VERSION = 1
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``repro-lint``."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the repro codebase "
        "(determinism, time-unit hygiene, exception discipline).",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"], help="files or directories to lint (default src/repro)")
    parser.add_argument("--whole-program", action="store_true", help="also run the cross-module analysis pass (fork-safety, aliasing, unit dataflow)")
    parser.add_argument("--format", choices=("human", "json", "sarif"), default="human", help="output format")
    parser.add_argument("--baseline", type=Path, default=None, help=f"baseline file (default: nearest {BASELINE_FILENAME} above the first path)")
    parser.add_argument("--no-baseline", action="store_true", help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true", help="write current findings to the baseline file and exit 0")
    parser.add_argument("--prune-baseline", action="store_true", help="drop baseline entries whose line_text no longer matches their file, rewrite the baseline, and exit")
    parser.add_argument("--select", action="append", default=None, metavar="RULE", help="run only these rules (repeatable, comma-separated)")
    parser.add_argument("--ignore", action="append", default=None, metavar="RULE", help="skip these rules (repeatable, comma-separated)")
    parser.add_argument("--strict", action="store_true", help="treat warnings as failures")
    parser.add_argument("--list-rules", action="store_true", help="list registered rules and exit")
    return parser


def _split_rule_ids(values: list[str] | None) -> list[str] | None:
    if values is None:
        return None
    return [token.strip().upper() for value in values for token in value.split(",") if token.strip()]


def _resolve_baseline(args: argparse.Namespace) -> Path | None:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    first = Path(args.paths[0])
    return discover_baseline(first if first.exists() else Path.cwd())


def _render_human(
    new: list[Finding], baselined: list[Finding], files_checked: int, suppressed: int
) -> None:
    for finding in new:
        print(finding.render())
    errors = sum(1 for f in new if f.severity is Severity.ERROR)
    warnings = len(new) - errors
    print(
        f"repro-lint: {files_checked} files checked, {errors} errors, "
        f"{warnings} warnings, {len(baselined)} baselined, {suppressed} suppressed"
    )


def _render_json(
    new: list[Finding], baselined: list[Finding], files_checked: int, suppressed: int
) -> str:
    payload = {
        "version": _JSON_FORMAT_VERSION,
        "findings": [finding.to_json_dict() for finding in new],
        "baselined": [finding.to_json_dict() for finding in baselined],
        "summary": {
            "files_checked": files_checked,
            "errors": sum(1 for f in new if f.severity is Severity.ERROR),
            "warnings": sum(1 for f in new if f.severity is Severity.WARNING),
            "baselined": len(baselined),
            "suppressed": suppressed,
        },
    }
    return json.dumps(payload, indent=2)


def _sarif_result(finding: Finding, suppressed: bool) -> dict:
    result = {
        "ruleId": finding.rule_id,
        "level": "error" if finding.severity is Severity.ERROR else "warning",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path.as_posix()},
                    "region": {"startLine": finding.line, "startColumn": finding.col},
                }
            }
        ],
    }
    if suppressed:
        result["suppressions"] = [{"kind": "external", "justification": "baselined"}]
    return result


def _render_sarif(new: list[Finding], baselined: list[Finding]) -> str:
    """Findings as a minimal SARIF 2.1.0 log for CI code-scanning upload.

    Baselined findings are included with a ``suppressions`` entry so
    dashboards show them as acknowledged rather than losing them.
    """
    rules = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.title},
            "defaultConfiguration": {
                "level": "error" if rule.default_severity is Severity.ERROR else "warning"
            },
        }
        for rule in (*all_rules(), *all_program_rules())
    ]
    payload = {
        "version": _SARIF_VERSION,
        "$schema": _SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rules,
                    }
                },
                "results": [
                    *(_sarif_result(finding, suppressed=False) for finding in new),
                    *(_sarif_result(finding, suppressed=True) for finding in baselined),
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in (*all_rules(), *all_program_rules()):
            scope = "program" if rule.rule_id in {r.rule_id for r in all_program_rules()} else "file"
            print(f"{rule.rule_id}  [{rule.default_severity}]  ({scope})  {rule.title}")
        return 0

    try:
        select = _split_rule_ids(args.select)
        ignore = _split_rule_ids(args.ignore)
        rules = all_rules(select=select, ignore=ignore)
        program_rules = all_program_rules(select=select, ignore=ignore)
        engine = LintEngine(rules, program_rules=program_rules)

        baseline_path = _resolve_baseline(args)

        if args.prune_baseline:
            if baseline_path is None or not baseline_path.exists():
                print("repro-lint: error: no baseline file to prune", file=sys.stderr)
                return 2
            baseline = Baseline.load(baseline_path)
            pruned, stale = baseline.prune_stale()
            if stale:
                pruned.save(baseline_path)
                for entry in stale:
                    print(f"repro-lint: pruned stale entry {entry.rule} {entry.path}: {entry.line_text!r}")
            print(f"repro-lint: {len(stale)} stale entries pruned, {len(pruned.entries)} kept in {baseline_path}")
            return 0

        run = engine.lint_paths(args.paths, whole_program=args.whole_program)

        if args.write_baseline:
            target = baseline_path or Path(BASELINE_FILENAME)
            previous = Baseline.load(target) if target.exists() else None
            root = target.parent if str(target.parent) != "" else Path(".")
            Baseline.from_findings(run.findings, root=root.resolve(), previous=previous).save(target)
            print(f"repro-lint: wrote {len(run.findings)} findings to {target}")
            return 0

        baseline = (
            Baseline.load(baseline_path)
            if baseline_path is not None and baseline_path.exists()
            else Baseline()
        )
        new, baselined = baseline.filter(run.findings)
    except (ReproError, KeyError, OSError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(_render_json(new, baselined, run.files_checked, len(run.suppressed)))
    elif args.format == "sarif":
        print(_render_sarif(new, baselined))
    else:
        _render_human(new, baselined, run.files_checked, len(run.suppressed))

    failing = new if args.strict else [f for f in new if f.severity is Severity.ERROR]
    return 1 if failing else 0


if __name__ == "__main__":
    raise SystemExit(main())
