"""``repro-lint`` command-line interface.

Exit codes::

    0   no new findings (baselined/suppressed findings are fine)
    1   at least one new finding at error severity (any severity with --strict)
    2   usage or configuration error (bad rule id, unreadable baseline, ...)

Examples::

    repro-lint src/repro
    repro-lint src/repro --format json | jq '.summary'
    repro-lint src/repro --write-baseline      # grandfather current findings
    repro-lint src/repro --no-baseline --strict
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.errors import ReproError
from repro.lint.baseline import BASELINE_FILENAME, Baseline, discover_baseline
from repro.lint.engine import LintEngine
from repro.lint.findings import Finding, Severity
from repro.lint.registry import all_rules

_JSON_FORMAT_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``repro-lint``."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant checker for the repro codebase "
        "(determinism, time-unit hygiene, exception discipline).",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"], help="files or directories to lint (default src/repro)")
    parser.add_argument("--format", choices=("human", "json"), default="human", help="output format")
    parser.add_argument("--baseline", type=Path, default=None, help=f"baseline file (default: nearest {BASELINE_FILENAME} above the first path)")
    parser.add_argument("--no-baseline", action="store_true", help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true", help="write current findings to the baseline file and exit 0")
    parser.add_argument("--select", action="append", default=None, metavar="RULE", help="run only these rules (repeatable, comma-separated)")
    parser.add_argument("--ignore", action="append", default=None, metavar="RULE", help="skip these rules (repeatable, comma-separated)")
    parser.add_argument("--strict", action="store_true", help="treat warnings as failures")
    parser.add_argument("--list-rules", action="store_true", help="list registered rules and exit")
    return parser


def _split_rule_ids(values: list[str] | None) -> list[str] | None:
    if values is None:
        return None
    return [token.strip().upper() for value in values for token in value.split(",") if token.strip()]


def _resolve_baseline(args: argparse.Namespace) -> Path | None:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    first = Path(args.paths[0])
    return discover_baseline(first if first.exists() else Path.cwd())


def _render_human(new: list[Finding], baselined: list[Finding], files_checked: int) -> None:
    for finding in new:
        print(finding.render())
    errors = sum(1 for f in new if f.severity is Severity.ERROR)
    warnings = len(new) - errors
    print(
        f"repro-lint: {files_checked} files checked, {errors} errors, "
        f"{warnings} warnings, {len(baselined)} baselined"
    )


def _render_json(new: list[Finding], baselined: list[Finding], files_checked: int) -> str:
    payload = {
        "version": _JSON_FORMAT_VERSION,
        "findings": [finding.to_json_dict() for finding in new],
        "baselined": [finding.to_json_dict() for finding in baselined],
        "summary": {
            "files_checked": files_checked,
            "errors": sum(1 for f in new if f.severity is Severity.ERROR),
            "warnings": sum(1 for f in new if f.severity is Severity.WARNING),
            "baselined": len(baselined),
        },
    }
    return json.dumps(payload, indent=2)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  [{rule.default_severity}]  {rule.title}")
        return 0

    try:
        rules = all_rules(select=_split_rule_ids(args.select), ignore=_split_rule_ids(args.ignore))
        engine = LintEngine(rules)
        run = engine.lint_paths(args.paths)

        baseline_path = _resolve_baseline(args)

        if args.write_baseline:
            target = baseline_path or Path(BASELINE_FILENAME)
            previous = Baseline.load(target) if target.exists() else None
            root = target.parent if str(target.parent) != "" else Path(".")
            Baseline.from_findings(run.findings, root=root.resolve(), previous=previous).save(target)
            print(f"repro-lint: wrote {len(run.findings)} findings to {target}")
            return 0

        baseline = (
            Baseline.load(baseline_path)
            if baseline_path is not None and baseline_path.exists()
            else Baseline()
        )
        new, baselined = baseline.filter(run.findings)
    except (ReproError, KeyError, OSError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(_render_json(new, baselined, run.files_checked))
    else:
        _render_human(new, baselined, run.files_checked)

    failing = new if args.strict else [f for f in new if f.severity is Severity.ERROR]
    return 1 if failing else 0


if __name__ == "__main__":
    raise SystemExit(main())
