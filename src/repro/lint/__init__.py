"""repro-lint: AST-based invariant checker for the repro codebase.

The reproduction's headline numbers are only trustworthy if the trace
generator and discrete-event simulator are bit-for-bit deterministic
under a master seed, if every time-valued quantity has an unambiguous
unit, and if failures surface as typed :mod:`repro.errors` exceptions
instead of being swallowed. This package enforces those contracts
statically, before code ever runs:

==========  ==========================================================
Rule        Invariant
==========  ==========================================================
``DET001``  No module-level ``random.*`` / ``numpy.random`` calls —
            all randomness flows through an injected
            :class:`random.Random` or ``RandomStreams``.
``DET002``  No wall-clock reads (``time.time``, ``datetime.now``, …)
            inside ``repro.simulation``, ``repro.workload`` or
            ``repro.core`` — simulated time only.
``UNIT001`` Time-valued parameters and attributes carry a ``_ms`` /
            ``_s`` unit suffix; additive arithmetic never mixes the
            two.
``FLT001``  No ``==`` / ``!=`` between float time expressions.
``EXC001``  No bare ``except:`` or broad ``except Exception:``;
            generic raises use :mod:`repro.errors` types.
``DOC001``  Public functions in ``repro.core`` and ``repro.dns`` have
            docstrings and return annotations.
==========  ==========================================================

Findings can be suppressed inline with ``# repro-lint: disable=RULE``
or grandfathered (with a justification) in a committed
``lint-baseline.json``. See ``repro-lint --help`` for the CLI.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.engine import FileContext, LintEngine, LintRun
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules, get_rule, register_rule

# Importing the rules package registers every built-in rule.
from repro.lint import rules as _rules  # noqa: F401  (import for side effect)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintRun",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "register_rule",
]
