"""repro-lint: AST-based invariant checker for the repro codebase.

The reproduction's headline numbers are only trustworthy if the trace
generator and discrete-event simulator are bit-for-bit deterministic
under a master seed, if every time-valued quantity has an unambiguous
unit, and if failures surface as typed :mod:`repro.errors` exceptions
instead of being swallowed. This package enforces those contracts
statically, before code ever runs:

==========  ==========================================================
Rule        Invariant
==========  ==========================================================
``DET001``  No module-level ``random.*`` / ``numpy.random`` calls —
            all randomness flows through an injected
            :class:`random.Random` or ``RandomStreams``.
``DET002``  No wall-clock reads (``time.time``, ``datetime.now``, …)
            inside ``repro.simulation``, ``repro.workload`` or
            ``repro.core`` — simulated time only.
``UNIT001`` Time-valued parameters and attributes carry a ``_ms`` /
            ``_s`` unit suffix; additive arithmetic never mixes the
            two.
``FLT001``  No ``==`` / ``!=`` between float time expressions.
``EXC001``  No bare ``except:`` or broad ``except Exception:``;
            generic raises use :mod:`repro.errors` types.
``DOC001``  Public functions in ``repro.core`` and ``repro.dns`` have
            docstrings and return annotations.
==========  ==========================================================

Under ``--whole-program`` a second, cross-module pass builds a
project-wide symbol table and approximate call graph
(:mod:`repro.lint.program`) and runs the program rules:

=============  =======================================================
Rule           Invariant
=============  =======================================================
``SHARED001``  Module-level mutable state reachable from fork workers
               is audited with ``# repro-lint: fork-shared(<why>)``.
``SHARED002``  Module-level containers are bounded — something clears,
               shrinks or rebinds them.
``ALIAS001``   ``self.<attr>`` slots aliased or iterated by another
               method are mutated in place, never rebound.
``UNIT002``    No seconds↔milliseconds mixing through assignments,
               call arguments and returns (interprocedural dataflow).
=============  =======================================================

Findings can be suppressed inline with
``# repro-lint: disable=RULE <justification>`` (the justification is
mandatory, like a baseline entry's) or grandfathered in a committed
``lint-baseline.json``. See ``repro-lint --help`` for the CLI.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.engine import FileContext, LintEngine, LintRun
from repro.lint.findings import Finding, Severity
from repro.lint.program import ProgramModel, build_program
from repro.lint.registry import (
    ProgramRule,
    Rule,
    all_program_rules,
    all_rules,
    get_program_rule,
    get_rule,
    register_program_rule,
    register_rule,
)

# Importing the rules package registers every built-in rule.
from repro.lint import rules as _rules  # noqa: F401  (import for side effect)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintRun",
    "ProgramModel",
    "ProgramRule",
    "Rule",
    "Severity",
    "all_program_rules",
    "all_rules",
    "build_program",
    "get_program_rule",
    "get_rule",
    "register_program_rule",
    "register_rule",
]
