"""SHARED001/SHARED002/ALIAS001: fork-safety of shared mutable state.

The sharded pipeline's determinism contract (byte-identical results for
any worker count) only holds if no state is shared mutably between the
parent and its fork workers, and if no long-lived process accumulates
unbounded per-scenario state. These whole-program rules encode the three
defect shapes the PR 5 review actually caught:

``SHARED001``
    Module-level mutable state (a container, or a slot rebound via
    ``global``) that is reachable from functions dispatched through
    fork workers. A worker mutating its copy-on-write copy silently
    diverges from the parent; a parent rebinding the slot mid fan-out
    clobbers nested runs. Audited exceptions (the fan-out slots in
    :mod:`repro.core.parallel`, the interning memos) are declared inline
    with ``# repro-lint: fork-shared(<why>)`` on the definition line —
    the justification is mandatory.

``SHARED002``
    A module-level container that some function grows but nothing ever
    shrinks, caps or resets: an unbounded memo that leaks across
    scenarios in long-lived multi-scenario drivers.

``ALIAS001``
    A method rebinding ``self.<attr>`` to a fresh container while a
    *different* method holds a local alias of (or iterates) the same
    attribute — the exact shape of the heap-compaction bug where
    ``_compact`` detached the queue alias held by ``run()``. Mutate in
    place instead (slice assignment, ``clear()`` + ``extend()``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ProgramRule, register_program_rule

if TYPE_CHECKING:
    from repro.lint.program import GlobalSlot, ProgramModel


def _site_summary(sites: list, limit: int = 2) -> str:
    """A short ``f() at line N`` listing of access sites."""
    parts = []
    for site in sites[:limit]:
        line = getattr(site.node, "lineno", "?")
        parts.append(f"{site.function.rsplit('.', 1)[-1]}() at line {line}")
    if len(sites) > limit:
        parts.append(f"and {len(sites) - limit} more")
    return ", ".join(parts)


@register_program_rule
class ForkSharedStateRule(ProgramRule):
    """SHARED001: no unaudited mutable state shared with fork workers."""

    rule_id = "SHARED001"
    title = "module-level mutable state reachable from fork workers is audited"
    default_severity = Severity.ERROR

    def check_program(self, model: "ProgramModel") -> Iterator[Finding]:
        for slot in model.iter_slots():
            if not slot.mutators():
                continue  # never mutated or rebound: effectively constant
            fork_accessors = model.fork_reachable_accessors(slot)
            if not fork_accessors:
                continue
            if slot.pragma:
                if slot.pragma_reason:
                    continue  # audited exception
                yield self.finding(
                    model,
                    slot.module,
                    slot.node,
                    f"fork-shared pragma on {slot.name!r} has an empty justification; "
                    "write '# repro-lint: fork-shared(<why this is safe>)'",
                )
                continue
            touching = ", ".join(name.rsplit(".", 1)[-1] + "()" for name in fork_accessors[:3])
            yield self.finding(
                model,
                slot.module,
                slot.node,
                f"module-level mutable state {slot.name!r} is mutated and reachable "
                f"from fork workers (via {touching}); mutation across the fork "
                "boundary breaks byte-identical sharding — refactor, or audit it "
                "with '# repro-lint: fork-shared(<why>)'",
            )


@register_program_rule
class UnboundedModuleStateRule(ProgramRule):
    """SHARED002: module-level containers that only ever grow are leaks."""

    rule_id = "SHARED002"
    title = "module-level containers are bounded (reset, cap or shrink somewhere)"
    default_severity = Severity.ERROR

    def check_program(self, model: "ProgramModel") -> Iterator[Finding]:
        for slot in model.iter_slots():
            if not slot.is_container or not slot.grown_by:
                continue
            if slot.shrunk_by or slot.rebound_by:
                continue  # something resets, caps or replaces it
            if slot.pragma and slot.pragma_reason:
                continue
            yield self.finding(
                model,
                slot.module,
                slot.node,
                f"module-level container {slot.name!r} is grown "
                f"({_site_summary(slot.grown_by)}) but never cleared, shrunk or "
                "rebound: an unbounded memo that leaks across scenarios in "
                "long-lived drivers — add a cap-and-reset, or audit it with "
                "'# repro-lint: fork-shared(<why>)'",
            )


@register_program_rule
class AliasedAttributeRebindRule(ProgramRule):
    """ALIAS001: no rebinding of attributes another method aliases or drains."""

    rule_id = "ALIAS001"
    title = "attributes aliased by other methods are mutated in place, not rebound"
    default_severity = Severity.ERROR

    def check_program(self, model: "ProgramModel") -> Iterator[Finding]:
        for cls in model.iter_classes():
            for attr in sorted(cls.attr_rebinds):
                hazards = [
                    *cls.attr_aliases.get(attr, ()),
                    *cls.attr_iterations.get(attr, ()),
                ]
                for rebind in cls.attr_rebinds[attr]:
                    held_elsewhere = sorted(
                        {use.method for use in hazards if use.method != rebind.method}
                    )
                    if not held_elsewhere:
                        continue
                    holders = ", ".join(f"{cls.name}.{m}()" for m in held_elsewhere[:3])
                    yield self.finding(
                        model,
                        cls.module,
                        rebind.node,
                        f"rebinding self.{attr} to a fresh container silently detaches "
                        f"the reference held by {holders}; mutate it in place instead "
                        f"(self.{attr}[:] = ..., or clear() and extend())",
                    )
