"""UNIT002: interprocedural seconds↔milliseconds dataflow.

UNIT001 polices *names*: a time-valued definition must carry a ``_s`` /
``_ms`` suffix, and one expression must not add differently-suffixed
names. What it cannot see is a unit flowing through intermediate
bindings and call boundaries::

    budget = timeout_budget_ms()      # budget is milliseconds
    sleep_for(budget)                 # ...into a 'pause_s' parameter

UNIT002 closes that gap with a conservative forward dataflow over the
whole-program call graph:

* every suffixed name (parameter, attribute, function) declares a unit;
* assignments propagate units into local variables; multiplicative
  arithmetic (``* 1000``, ``/ 1000.0``) *clears* the unit, since that
  is how conversions are written;
* function return units are inferred from suffixed function names or,
  failing that, from the units of returned expressions (to a fixpoint
  across the call graph);
* a finding is reported when units provably disagree: an argument
  flowing into a differently-suffixed parameter, a return value bound
  to a differently-suffixed name, additive arithmetic or an ordered
  comparison between expressions of known different units, or a
  function whose suffixed name disagrees with what it returns.

"Provably" is the operative word: any expression whose unit is unknown
(constants, unresolved calls, mixed branches) propagates *no* unit, so
the rule stays quiet rather than guessing.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Iterator

from repro.lint.findings import Finding, Severity
from repro.lint.registry import ProgramRule, register_program_rule
from repro.lint.rules.units import unit_of

if TYPE_CHECKING:
    from repro.lint.program import CallSite, FunctionInfo, ProgramModel

#: Builtins that pass their argument's dimension through unchanged.
_PASSTHROUGH_BUILTINS = frozenset({"abs", "float", "int", "max", "min", "round", "sum"})

#: How many fixpoint sweeps to run for return-unit inference; unit facts
#: only ever flow a few call levels deep in practice.
_RETURN_UNIT_PASSES = 4

_Emit = Callable[[ast.AST, str], None]


def _describe(unit: str) -> str:
    return {"s": "seconds", "ms": "milliseconds", "us": "microseconds", "ns": "nanoseconds"}.get(
        unit, unit
    )


class _FunctionFlow:
    """One pass of unit dataflow over a single function body."""

    def __init__(
        self,
        func: "FunctionInfo",
        model: "ProgramModel",
        return_units: dict[str, str | None],
        emit: _Emit | None,
    ) -> None:
        self.func = func
        self.model = model
        self.return_units = return_units
        self.emit = emit
        self.calls: dict[int, "CallSite"] = {id(site.node): site for site in func.calls}
        self.env: dict[str, str | None] = {
            param: unit_of(param) for param in func.params if param not in ("self", "cls")
        }
        self.returned: list[str | None] = []

    # -- statement walk (source order) -----------------------------------

    def run(self) -> None:
        """Walk the function body once, in source order."""
        self._visit_body(self.func.node.body)

    def _visit_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analysed as their own functions (or not at all)
        if isinstance(stmt, ast.Assign):
            unit = self._scan(stmt.value)
            for target in stmt.targets:
                self._bind(target, unit, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            unit = self._scan(stmt.value) if stmt.value is not None else None
            self._bind(stmt.target, unit, stmt)
        elif isinstance(stmt, ast.AugAssign):
            unit = self._scan(stmt.value)
            target_unit = self._unit_of_target(stmt.target)
            if (
                isinstance(stmt.op, (ast.Add, ast.Sub))
                and unit is not None
                and target_unit is not None
                and unit != target_unit
            ):
                self._report(
                    stmt,
                    f"augmented assignment adds {_describe(unit)} to "
                    f"{self._target_name(stmt.target)!r} [{target_unit}]; convert first",
                )
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                unit = self._scan(stmt.value)
                self.returned.append(unit)
                declared = unit_of(self.func.name)
                if declared is not None and unit is not None and unit != declared:
                    self._report(
                        stmt,
                        f"{self.func.name}() is suffixed [{declared}] but returns "
                        f"{_describe(unit)}",
                    )
            else:
                self.returned.append(None)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._scan(stmt.test)
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan(stmt.iter)
            self._bind(stmt.target, None, stmt)
            self._visit_body(stmt.body)
            self._visit_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, None, stmt)
            self._visit_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._visit_body(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = None
                self._visit_body(handler.body)
            self._visit_body(stmt.orelse)
            self._visit_body(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self._scan(stmt.value)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._scan(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self._scan(stmt.test)
        # Pass/Break/Continue/Import/Global/Nonlocal/Delete: nothing flows.

    # -- binding ---------------------------------------------------------

    @staticmethod
    def _target_name(target: ast.expr) -> str:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return "<target>"

    def _unit_of_target(self, target: ast.expr) -> str | None:
        if isinstance(target, ast.Name):
            return self.env.get(target.id) or unit_of(target.id)
        if isinstance(target, ast.Attribute):
            return unit_of(target.attr)
        return None

    def _bind(self, target: ast.expr, unit: str | None, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            declared = unit_of(target.id)
            if declared is not None and unit is not None and declared != unit:
                self._report(
                    stmt,
                    f"assignment gives {target.id!r} [{declared}] a value in "
                    f"{_describe(unit)}; convert to {_describe(declared)} first",
                )
            self.env[target.id] = declared if declared is not None else unit
        elif isinstance(target, ast.Attribute):
            declared = unit_of(target.attr)
            if declared is not None and unit is not None and declared != unit:
                self._report(
                    stmt,
                    f"assignment gives attribute {target.attr!r} [{declared}] a value "
                    f"in {_describe(unit)}; convert to {_describe(declared)} first",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, None, stmt)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, None, stmt)
        # Subscript targets carry the container's unit; nothing to rebind.

    # -- expression scan (bottom-up) -------------------------------------

    def _scan(self, expr: ast.expr | None) -> str | None:
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return self.env[expr.id]
            return unit_of(expr.id)
        if isinstance(expr, ast.Attribute):
            self._scan(expr.value)
            return unit_of(expr.attr)
        if isinstance(expr, ast.Constant):
            return None
        if isinstance(expr, ast.Call):
            return self._scan_call(expr)
        if isinstance(expr, ast.BinOp):
            return self._scan_binop(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._scan(expr.operand)
        if isinstance(expr, ast.IfExp):
            self._scan(expr.test)
            body_unit = self._scan(expr.body)
            orelse_unit = self._scan(expr.orelse)
            return body_unit if body_unit == orelse_unit else None
        if isinstance(expr, ast.Compare):
            return self._scan_compare(expr)
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                self._scan(value)
            return None
        if isinstance(expr, ast.Subscript):
            unit = self._scan(expr.value)
            self._scan(expr.slice)
            return unit  # a container named delays_ms holds milliseconds
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                self._scan(element)
            return None
        if isinstance(expr, ast.Dict):
            for key in expr.keys:
                self._scan(key)
            for value in expr.values:
                self._scan(value)
            return None
        if isinstance(expr, ast.Starred):
            return self._scan(expr.value)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp, ast.Lambda)):
            return None  # separate (unmodelled) scopes
        if isinstance(expr, ast.JoinedStr):
            return None
        return None

    def _scan_binop(self, expr: ast.BinOp) -> str | None:
        left_unit = self._scan(expr.left)
        right_unit = self._scan(expr.right)
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            if left_unit is not None and right_unit is not None:
                if left_unit != right_unit and not self._both_directly_suffixed(expr):
                    op = "+" if isinstance(expr.op, ast.Add) else "-"
                    self._report(
                        expr,
                        f"additive '{op}' mixes {_describe(left_unit)} and "
                        f"{_describe(right_unit)} through dataflow; convert to a "
                        "common unit first",
                    )
                    return None
                if left_unit == right_unit:
                    return left_unit
                return None
            return left_unit or right_unit
        # Multiplication/division is how conversions are written: clears units.
        return None

    @staticmethod
    def _both_directly_suffixed(expr: ast.BinOp) -> bool:
        """UNIT001 already flags a direct suffixed-name + suffixed-name mix."""

        def direct(node: ast.expr) -> bool:
            if isinstance(node, ast.Name):
                return unit_of(node.id) is not None
            if isinstance(node, ast.Attribute):
                return unit_of(node.attr) is not None
            return False

        return direct(expr.left) and direct(expr.right)

    def _scan_compare(self, expr: ast.Compare) -> str | None:
        operands = [expr.left, *expr.comparators]
        units = [self._scan(operand) for operand in operands]
        for index, op in enumerate(expr.ops):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                continue
            left_unit, right_unit = units[index], units[index + 1]
            if left_unit is not None and right_unit is not None and left_unit != right_unit:
                self._report(
                    expr,
                    f"ordered comparison mixes {_describe(left_unit)} and "
                    f"{_describe(right_unit)}; convert to a common unit first",
                )
        return None

    def _scan_call(self, expr: ast.Call) -> str | None:
        site = self.calls.get(id(expr))
        argument_units = [self._scan(arg) for arg in expr.args]
        keyword_units = {kw.arg: self._scan(kw.value) for kw in expr.keywords if kw.arg}
        for keyword in expr.keywords:
            if keyword.arg is None:
                self._scan(keyword.value)

        if site is None or site.target is None:
            return self._builtin_passthrough(expr, argument_units)

        callee = self.model.functions.get(site.target)
        if callee is None or not site.exact:
            return self._builtin_passthrough(expr, argument_units)

        params = callee.params
        if params and params[0] in ("self", "cls") and site.via_attribute:
            params = params[1:]
        elif params and params[0] in ("self", "cls") and callee.class_name is not None:
            # Unbound form (C.m(obj, ...)): keep self in the zip so the
            # caller's explicit receiver consumes it.
            pass
        for param, arg_unit, arg in zip(params, argument_units, expr.args):
            self._check_argument(expr, callee, param, arg_unit)
        for name, arg_unit in keyword_units.items():
            if name in callee.params:
                self._check_argument(expr, callee, name, arg_unit)
        return self.return_units.get(site.target)

    def _check_argument(
        self, call: ast.Call, callee: "FunctionInfo", param: str, arg_unit: str | None
    ) -> None:
        declared = unit_of(param)
        if declared is not None and arg_unit is not None and declared != arg_unit:
            self._report(
                call,
                f"argument for parameter {param!r} [{declared}] of "
                f"{callee.name}() carries {_describe(arg_unit)}; convert to "
                f"{_describe(declared)} first",
            )

    def _builtin_passthrough(self, expr: ast.Call, argument_units: list[str | None]) -> str | None:
        func = expr.func
        name = func.id if isinstance(func, ast.Name) else None
        if name in _PASSTHROUGH_BUILTINS:
            units = {unit for unit in argument_units if unit is not None}
            if len(units) == 1:
                return units.pop()
        return None

    # -- reporting -------------------------------------------------------

    def _report(self, node: ast.AST, message: str) -> None:
        if self.emit is not None:
            self.emit(node, message)


@register_program_rule
class UnitFlowRule(ProgramRule):
    """UNIT002: units stay consistent through assignments, calls and returns."""

    rule_id = "UNIT002"
    title = "no seconds<->milliseconds mixing through interprocedural dataflow"
    default_severity = Severity.ERROR

    def check_program(self, model: "ProgramModel") -> Iterator[Finding]:
        return_units = self._infer_return_units(model)
        findings: list[Finding] = []
        for func in model.iter_functions():
            def emit(node: ast.AST, message: str, _func=func) -> None:
                findings.append(self.finding(model, _func.module, node, message))

            _FunctionFlow(func, model, return_units, emit).run()
        yield from findings

    @staticmethod
    def _infer_return_units(model: "ProgramModel") -> dict[str, str | None]:
        """Fixpoint of function -> return unit over the call graph."""
        return_units: dict[str, str | None] = {}
        for _ in range(_RETURN_UNIT_PASSES):
            changed = False
            for func in model.iter_functions():
                declared = unit_of(func.name)
                if declared is not None:
                    inferred: str | None = declared
                else:
                    flow = _FunctionFlow(func, model, return_units, emit=None)
                    flow.run()
                    units = set(flow.returned)
                    inferred = units.pop() if len(units) == 1 else None
                if return_units.get(func.qualname, "unset") != inferred:
                    return_units[func.qualname] = inferred
                    changed = True
            if not changed:
                break
        return return_units
