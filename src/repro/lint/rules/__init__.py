"""Built-in rule modules; importing this package registers every rule."""

from __future__ import annotations

from repro.lint.rules import (
    atomicity,
    determinism,
    docs,
    exceptions,
    shared_state,
    unitflow,
    units,
)

__all__ = [
    "atomicity",
    "determinism",
    "docs",
    "exceptions",
    "shared_state",
    "unitflow",
    "units",
]
