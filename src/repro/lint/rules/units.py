"""UNIT001/FLT001: time-unit hygiene.

The paper's thresholds (100 ms blocking knee, 20 ms significance bar)
make millisecond/second confusion a silent factor-of-1000 error in the
headline numbers. UNIT001 requires time-valued *definitions* (function
parameters and annotated attributes) to carry an explicit ``_ms`` /
``_s`` suffix and flags additive arithmetic that mixes the two; FLT001
flags exact float equality between time expressions, which is almost
always a latent tolerance bug.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register_rule

#: Name segments that mark a quantity as time-valued.
_TIME_WORDS = frozenset({"delay", "gap", "latency", "rtt", "ttl", "duration", "timeout"})

#: Accepted unit suffixes (final ``_``-separated segment).
_UNIT_SUFFIXES = frozenset({"ms", "s", "us", "ns"})

#: Trailing qualifiers that do not change the quantity's dimension:
#: ``delay_min`` is still a delay, so the unit suffix is still required.
_QUALIFIERS = frozenset(
    {"avg", "cap", "floor", "limit", "max", "mean", "median", "min", "p50", "p75", "p90", "p95", "p99", "total"}
)

_SKIP_PARAMS = frozenset({"self", "cls"})


def _segments(name: str) -> list[str]:
    return [segment for segment in name.lower().split("_") if segment]


def unit_of(name: str) -> str | None:
    """The unit suffix of *name* (``"ms"``, ``"s"``, …), if it has one.

    A name that is *only* a unit token (``NS`` the record type, a loop
    variable ``s``) does not count: a suffix needs something to qualify.
    """
    segments = _segments(name)
    if len(segments) >= 2 and segments[-1] in _UNIT_SUFFIXES:
        return segments[-1]
    return None


def needs_unit_suffix(name: str) -> bool:
    """Does *name* denote a raw time value but lack a unit suffix?

    A name needs a suffix when, after dropping dimension-preserving
    qualifiers (``min``, ``max``, ``median``, …), its final segment is a
    time word. Derived quantities whose head is something else
    (``ttl_violator_fraction``, ``click_delay_sigma``) are exempt: their
    dimension is not time.
    """
    segments = _segments(name)
    if not segments or segments[-1] in _UNIT_SUFFIXES:
        return False
    while segments and segments[-1] in _QUALIFIERS:
        segments = segments[:-1]
    return bool(segments) and segments[-1] in _TIME_WORDS


def is_time_named(name: str) -> bool:
    """Is *name* time-valued, with or without a unit suffix?"""
    if unit_of(name) is not None:
        return True
    return needs_unit_suffix(name)


def _expr_name(node: ast.expr) -> str | None:
    """The identifier carried by a Name/Attribute expression, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register_rule
class TimeUnitSuffixRule(Rule):
    """UNIT001: time-valued definitions carry a unit suffix; no mixed arithmetic."""

    rule_id = "UNIT001"
    title = "time-valued names carry _ms/_s suffixes"
    default_severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_parameters(ctx, node)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if needs_unit_suffix(node.target.id):
                    yield self.finding(
                        ctx,
                        node,
                        f"time-valued attribute {node.target.id!r} has no unit suffix; "
                        f"rename to {node.target.id}_s or {node.target.id}_ms",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                yield from self._check_mixed_arithmetic(ctx, node)

    def _check_parameters(
        self, ctx: FileContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        arguments = node.args
        every = [
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
            *(arg for arg in (arguments.vararg, arguments.kwarg) if arg is not None),
        ]
        for arg in every:
            if arg.arg in _SKIP_PARAMS:
                continue
            if needs_unit_suffix(arg.arg):
                yield self.finding(
                    ctx,
                    arg,
                    f"time-valued parameter {arg.arg!r} of {node.name}() has no unit "
                    f"suffix; rename to {arg.arg}_s or {arg.arg}_ms",
                )

    def _check_mixed_arithmetic(self, ctx: FileContext, node: ast.BinOp) -> Iterator[Finding]:
        units: dict[str, str] = {}
        for operand in (node.left, node.right):
            name = _expr_name(operand)
            if name is None:
                continue
            unit = unit_of(name)
            if unit is not None:
                units[name] = unit
        distinct = set(units.values())
        if len(distinct) > 1:
            op = "+" if isinstance(node.op, ast.Add) else "-"
            detail = ", ".join(f"{name} [{unit}]" for name, unit in sorted(units.items()))
            yield self.finding(
                ctx,
                node,
                f"additive '{op}' mixes time units ({detail}); convert to a common unit first",
            )


#: Names that look like text/identifier fields; comparing them with
#: ``==`` is string comparison, not float comparison.
_TEXTUAL_SUFFIXES = ("text", "str", "name", "key", "label", "id", "field")


def _is_textual(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return not isinstance(node.value, (int, float)) or isinstance(node.value, bool)
    name = _expr_name(node)
    if name is None:
        return False
    segments = _segments(name)
    return bool(segments) and segments[-1] in _TEXTUAL_SUFFIXES


@register_rule
class FloatTimeEqualityRule(Rule):
    """FLT001: no exact equality between float time expressions."""

    rule_id = "FLT001"
    title = "no ==/!= on float time expressions"
    default_severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_textual(left) or _is_textual(right):
                    continue
                for side in (left, right):
                    name = _expr_name(side)
                    if name is not None and is_time_named(name):
                        symbol = "==" if isinstance(op, ast.Eq) else "!="
                        yield self.finding(
                            ctx,
                            node,
                            f"exact float {symbol} on time value {name!r}; compare with a "
                            "tolerance (math.isclose) or restructure to avoid equality",
                        )
                        break
