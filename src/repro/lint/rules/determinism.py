"""DET001/DET002/DET003: simulation determinism.

The whole experiment rests on one contract: a master seed fully
determines the trace (``repro.simulation.random.RandomStreams``) and
events happen in simulated time only. The rules track import aliases
so ``import random as r`` or ``from time import time as wall`` cannot
slip past them. DET003 closes the remaining hole: constructing a
generator *without* a seed (``random.Random()``/``SystemRandom``)
inside a simulated component, which makes fault probabilities and any
other draws irreproducible.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register_rule

#: Module-level functions of :mod:`random` that consume the hidden
#: global generator. ``random.Random`` (the class) is deliberately
#: absent: constructing an explicitly seeded generator is the sanctioned
#: path.
_RANDOM_FUNCTIONS = frozenset(
    {
        "betavariate",
        "binomialvariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Wall-clock reads that leak host time into simulated components.
_TIME_FUNCTIONS = frozenset(
    {
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "time",
        "time_ns",
    }
)
_DATETIME_FUNCTIONS = frozenset({"now", "utcnow", "today"})

#: Packages whose notion of time must come from the simulation clock.
_SIMULATED_PACKAGES = ("repro.simulation", "repro.workload", "repro.core")


class _ImportAliases(ast.NodeVisitor):
    """Maps local names to the modules/objects they were imported as."""

    def __init__(self) -> None:
        self.modules: dict[str, str] = {}  # local name -> dotted module
        self.objects: dict[str, tuple[str, str]] = {}  # local name -> (module, attr)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            dotted = alias.name if alias.asname else alias.name.split(".")[0]
            self.modules[local] = dotted

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            self.objects[alias.asname or alias.name] = (node.module, alias.name)


def _collect_aliases(tree: ast.Module) -> _ImportAliases:
    aliases = _ImportAliases()
    aliases.visit(tree)
    return aliases


def _call_target(node: ast.Call, aliases: _ImportAliases) -> tuple[str, str] | None:
    """Resolve a call to ``(module, function)`` via the import table.

    Handles ``module.func()``, ``pkg.module.func()`` (for ``import
    numpy`` style access to ``numpy.random``) and bare ``func()`` bound
    by a ``from module import func``.
    """
    func = node.func
    if isinstance(func, ast.Name):
        return aliases.objects.get(func.id)
    if isinstance(func, ast.Attribute):
        attrs: list[str] = [func.attr]
        value = func.value
        while isinstance(value, ast.Attribute):
            attrs.append(value.attr)
            value = value.value
        if not isinstance(value, ast.Name):
            return None
        root = aliases.modules.get(value.id)
        if root is None:
            # ``from datetime import datetime`` then ``datetime.now()``
            bound = aliases.objects.get(value.id)
            if bound is None:
                return None
            root = f"{bound[0]}.{bound[1]}"
        function = attrs[0]
        dotted = ".".join([root, *reversed(attrs[1:])])
        return (dotted, function)
    return None


@register_rule
class SeededRandomnessRule(Rule):
    """DET001: all randomness must flow through an injected generator."""

    rule_id = "DET001"
    title = "no module-level random.* calls"
    default_severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = _collect_aliases(ctx.tree)
        for name, (module, attr) in aliases.objects.items():
            if module == "random" and attr in _RANDOM_FUNCTIONS:
                node = self._import_node(ctx.tree, name)
                yield self.finding(
                    ctx,
                    node if node is not None else ctx.tree,
                    f"importing random.{attr} binds the hidden global generator; "
                    "inject a random.Random (see repro.simulation.random.RandomStreams)",
                )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node, aliases)
            if target is None:
                continue
            module, function = target
            if module == "random" and function in _RANDOM_FUNCTIONS:
                yield self.finding(
                    ctx,
                    node,
                    f"random.{function}() uses the unseeded global generator and breaks "
                    "master-seed determinism; draw from an injected random.Random stream",
                )
            elif module == "numpy.random":
                yield self.finding(
                    ctx,
                    node,
                    f"numpy.random.{function}() uses numpy's global generator; "
                    "use an explicitly seeded numpy.random.Generator or a RandomStreams stream",
                )

    @staticmethod
    def _import_node(tree: ast.Module, local_name: str) -> ast.ImportFrom | None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and any(
                (alias.asname or alias.name) == local_name for alias in node.names
            ):
                return node
        return None


@register_rule
class WallClockRule(Rule):
    """DET002: simulated components read the simulation clock, never the host's."""

    rule_id = "DET002"
    title = "no wall-clock reads in simulated components"
    default_severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*_SIMULATED_PACKAGES):
            return
        aliases = _collect_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node, aliases)
            if target is None:
                continue
            module, function = target
            if module == "time" and function in _TIME_FUNCTIONS:
                yield self.finding(
                    ctx,
                    node,
                    f"time.{function}() reads the wall clock inside a simulated component; "
                    "use the engine's simulated now",
                )
            elif (
                module in ("datetime.datetime", "datetime.date")
                and function in _DATETIME_FUNCTIONS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{module}.{function}() reads the wall clock inside a simulated "
                    "component; derive timestamps from simulated time",
                )


@register_rule
class UnseededGeneratorRule(Rule):
    """DET003: simulated components never construct unseeded generators.

    ``random.Random()`` with no arguments seeds from the OS, so any
    probability driven by it — fault injection above all — changes from
    run to run. Every generator in a simulated package must be seeded
    from the master seed (``derive_seed``); ``SystemRandom`` can never
    be, so it is banned outright.
    """

    rule_id = "DET003"
    title = "no unseeded generators in simulated components"
    default_severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*_SIMULATED_PACKAGES):
            return
        aliases = _collect_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node, aliases)
            if target is None:
                continue
            module, function = target
            if module != "random":
                continue
            if function == "SystemRandom":
                yield self.finding(
                    ctx,
                    node,
                    "random.SystemRandom draws from the OS entropy pool and can never "
                    "be reproduced; derive a seeded random.Random via derive_seed",
                )
            elif function == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "random.Random() with no seed makes every probability (fault "
                    "injection included) irreproducible; seed it via derive_seed",
                )
