"""EXC001: exception discipline.

Swallowed exceptions turn determinism bugs into silently wrong tables;
generic exception types strip callers of the ability to distinguish
library failures (:class:`repro.errors.ReproError`) from programming
errors. This rule bans bare/broad handlers and generic raises.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register_rule

_BROAD_TYPES = frozenset({"Exception", "BaseException"})

#: Builtins that legitimately signal caller programming errors at an
#: API boundary; anything else generic must be a :mod:`repro.errors`
#: type so callers can catch library failures as ``ReproError``.
_ALLOWED_BUILTIN_RAISES = frozenset(
    {
        "AssertionError",
        "IndexError",
        "KeyError",
        "NotImplementedError",
        "OSError",
        "StopIteration",
        "SystemExit",
        "TypeError",
        "ValueError",
    }
)
_BANNED_RAISES = frozenset({"Exception", "BaseException", "RuntimeError"})


def _type_names(annotation: ast.expr) -> Iterator[str]:
    """Exception type names in an ``except`` clause (unpacks tuples)."""
    if isinstance(annotation, ast.Tuple):
        for element in annotation.elts:
            yield from _type_names(element)
    elif isinstance(annotation, ast.Name):
        yield annotation.id
    elif isinstance(annotation, ast.Attribute):
        yield annotation.attr


def _is_swallowing(body: list[ast.stmt]) -> bool:
    """Does the handler body discard the exception without acting on it?"""
    meaningful = [stmt for stmt in body if not isinstance(stmt, ast.Pass)]
    if not meaningful:
        return True
    return all(
        isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)
        for stmt in meaningful
    )


@register_rule
class ExceptionDisciplineRule(Rule):
    """EXC001: no bare/broad excepts; raises use repro.errors types."""

    rule_id = "EXC001"
    title = "exception discipline"
    default_severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(ctx, node)
            elif isinstance(node, ast.Raise):
                yield from self._check_raise(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_suppress(ctx, node)

    def _check_suppress(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        """``contextlib.suppress(Exception)`` is a broad except in disguise."""
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "suppress":
            return
        broad = [
            arg_name
            for arg in node.args
            for arg_name in _type_names(arg)
            if arg_name in _BROAD_TYPES
        ]
        if broad:
            yield self.finding(
                ctx,
                node,
                f"contextlib.suppress({broad[0]}) silently swallows failures exactly "
                "like 'except Exception: pass'; suppress the concrete failure types",
            )

    def _check_handler(self, ctx: FileContext, node: ast.ExceptHandler) -> Iterator[Finding]:
        if node.type is None:
            yield self.finding(
                ctx,
                node,
                "bare 'except:' catches SystemExit/KeyboardInterrupt and hides bugs; "
                "catch the concrete failure types",
            )
            return
        broad = [name for name in _type_names(node.type) if name in _BROAD_TYPES]
        if not broad:
            return
        if _is_swallowing(node.body):
            yield self.finding(
                ctx,
                node,
                f"'except {broad[0]}: pass' silently swallows failures; catch the "
                "concrete types and handle or re-raise as a repro.errors type",
            )
        else:
            yield self.finding(
                ctx,
                node,
                f"overly broad 'except {broad[0]}' also catches programming errors; "
                "narrow to the concrete failure types (repro.errors)",
            )

    def _check_raise(self, ctx: FileContext, node: ast.Raise) -> Iterator[Finding]:
        exc = node.exc
        if exc is None:  # bare re-raise is the right way to propagate
            return
        target = exc.func if isinstance(exc, ast.Call) else exc
        if not isinstance(target, ast.Name):
            return  # attribute raises (repro.errors.X, module-qualified) are typed
        name = target.id
        if name in _BANNED_RAISES:
            yield self.finding(
                ctx,
                node,
                f"raising generic {name} across a module boundary strips type "
                "information; raise a repro.errors type instead",
            )
