"""CKPT001/CKPT002: crash-sensitive files are written atomically.

A checkpoint exists to survive a crash — which means the crash can land
inside the checkpoint writer itself. A plain ``open(path, "w")`` on a
checkpoint path truncates the previous good snapshot before the new one
is durable, so a kill mid-write destroys the very state the file was
meant to preserve. All checkpoint writes must go through
:func:`repro.core.checkpoint.atomic_write_bytes` (write-temp + fsync +
rename), which that module owns — it is the single audited exemption
(CKPT001).

Binary trace files (RBLG binlogs) share the failure mode with a twist:
TSV logs are line-framed, so a truncated text log is still mostly
readable, but a binlog truncated mid-block loses its file-header record
count and the torn block. Binlog writers therefore carry the same
obligation — serialize fully, then hand the bytes to
``atomic_write_bytes`` — and CKPT002 flags any write-mode ``open`` on a
binlog-looking path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register_rule

#: Path substrings marking an expression as "a checkpoint path". Matched
#: against the unparsed source of ``open``'s file argument, lowercased,
#: so variables (``checkpoint_path``), attributes (``self.ckpt``) and
#: literals (``"run.ckpt"``) are all caught.
_CHECKPOINT_MARKERS = ("checkpoint", "ckpt")

#: The one module allowed to open checkpoint paths for writing: it
#: implements the atomic-rename helper everything else must call.
_EXEMPT_SUFFIX = "repro/core/checkpoint.py"


def _open_mode(node: ast.Call) -> str | None:
    """The literal mode string of an ``open`` call, if present."""
    if len(node.args) >= 2:
        mode = node.args[1]
    else:
        mode = next(
            (kw.value for kw in node.keywords if kw.arg == "mode"), None
        )
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _open_path(node: ast.Call) -> ast.expr | None:
    """The file-argument expression of an ``open`` call, if present."""
    if node.args:
        return node.args[0]
    return next((kw.value for kw in node.keywords if kw.arg == "file"), None)


@register_rule
class CheckpointAtomicityRule(Rule):
    """CKPT001: no bare write-mode open() on checkpoint paths."""

    rule_id = "CKPT001"
    title = "checkpoint writes go through the atomic-rename helper"
    default_severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if str(ctx.path).replace("\\", "/").endswith(_EXEMPT_SUFFIX):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Name) and func.id == "open"):
                continue
            mode = _open_mode(node)
            if mode is None or not any(flag in mode for flag in "wax+"):
                continue
            path_expr = _open_path(node)
            if path_expr is None:
                continue
            source = ast.unparse(path_expr).lower()
            if not any(marker in source for marker in _CHECKPOINT_MARKERS):
                continue
            yield self.finding(
                ctx,
                node,
                f"open({ast.unparse(path_expr)}, {mode!r}) truncates a checkpoint "
                "in place — a crash mid-write destroys the last good snapshot; "
                "use repro.core.checkpoint.atomic_write_bytes instead",
            )


#: Path substrings marking an expression as "a binary trace file".
#: ``rblg`` covers both the extension (``dns.rblg``) and variables named
#: after the format; ``binlog`` covers paths built from the module name.
_BINLOG_MARKERS = ("binlog", "rblg")


@register_rule
class BinlogAtomicityRule(Rule):
    """CKPT002: no bare write-mode open() on binary trace (binlog) paths."""

    rule_id = "CKPT002"
    title = "binlog writes go through the atomic-rename helper"
    default_severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if str(ctx.path).replace("\\", "/").endswith(_EXEMPT_SUFFIX):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Name) and func.id == "open"):
                continue
            mode = _open_mode(node)
            if mode is None or not any(flag in mode for flag in "wax+"):
                continue
            path_expr = _open_path(node)
            if path_expr is None:
                continue
            source = ast.unparse(path_expr).lower()
            if not any(marker in source for marker in _BINLOG_MARKERS):
                continue
            yield self.finding(
                ctx,
                node,
                f"open({ast.unparse(path_expr)}, {mode!r}) writes a binary "
                "trace file in place — a crash mid-write leaves a torn, "
                "unreadable binlog; serialize and hand the bytes to "
                "repro.core.checkpoint.atomic_write_bytes instead",
            )
