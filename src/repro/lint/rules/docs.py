"""DOC001: public API documentation in ``repro.core`` and ``repro.dns``.

These two packages are the analysis pipeline's public surface; every
public function needs a docstring and a return annotation so results
(and their units) are never guessed at call sites.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, register_rule

_DOCUMENTED_PACKAGES = ("repro.core", "repro.dns")


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = set()
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


@register_rule
class PublicDocstringRule(Rule):
    """DOC001: public functions have docstrings and return annotations."""

    rule_id = "DOC001"
    title = "public functions are documented and annotated"
    default_severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*_DOCUMENTED_PACKAGES):
            return
        yield from self._check_body(ctx, ctx.tree.body)

    def _check_body(self, ctx: FileContext, body: list[ast.stmt]) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if not node.name.startswith("_"):
                    yield from self._check_body(ctx, node.body)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        if node.name.startswith("_"):  # private helpers and dunders
            return
        if "overload" in _decorator_names(node):
            return
        if ast.get_docstring(node) is None:
            yield self.finding(
                ctx,
                node,
                f"public function {node.name}() has no docstring; state what it "
                "returns and the units of any time values",
            )
        if node.returns is None:
            yield self.finding(
                ctx,
                node,
                f"public function {node.name}() has no return annotation",
            )
