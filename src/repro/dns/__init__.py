"""DNS protocol substrate: names, records, messages, wire codec, caches,
authoritative zones, and resolver models.

This package is a from-scratch implementation of the DNS machinery the
paper's measured traffic flows through: stub resolvers with local caches,
shared recursive resolver platforms, and an authoritative hierarchy.
"""

from repro.dns.cache import CacheEntry, CacheLookup, CacheStats, DnsCache, cache_key
from repro.dns.message import Flags, Message, Opcode, Question, Rcode, make_query, make_response
from repro.dns.name import ROOT, DomainName
from repro.dns.resolver import (
    RecursiveResolver,
    ResolutionOutcome,
    ResolverProfile,
    StubLookup,
    StubResolver,
    build_platform_profiles,
)
from repro.dns.rr import (
    AAAARecordData,
    ARecordData,
    MXRecordData,
    NameRecordData,
    OpaqueRecordData,
    ResourceRecord,
    RRClass,
    RRType,
    SOARecordData,
    SRVRecordData,
    TXTRecordData,
    a_record,
    aaaa_record,
    cname_record,
    ns_record,
)
from repro.dns.wire import (
    decode_message,
    decode_message_stream,
    encode_message,
    encode_message_tcp,
)
from repro.dns.zone import AuthoritativeServer, DnsHierarchy, Zone
from repro.dns.zonefile import load_zone_text, parse_zone_text, serialize_records

__all__ = [
    "AAAARecordData",
    "ARecordData",
    "AuthoritativeServer",
    "CacheEntry",
    "CacheLookup",
    "CacheStats",
    "DnsCache",
    "DnsHierarchy",
    "DomainName",
    "Flags",
    "MXRecordData",
    "Message",
    "NameRecordData",
    "Opcode",
    "OpaqueRecordData",
    "Question",
    "ROOT",
    "RRClass",
    "RRType",
    "Rcode",
    "RecursiveResolver",
    "ResolutionOutcome",
    "ResolverProfile",
    "ResourceRecord",
    "SOARecordData",
    "SRVRecordData",
    "StubLookup",
    "StubResolver",
    "TXTRecordData",
    "Zone",
    "a_record",
    "aaaa_record",
    "build_platform_profiles",
    "cache_key",
    "cname_record",
    "decode_message",
    "decode_message_stream",
    "encode_message",
    "encode_message_tcp",
    "load_zone_text",
    "make_query",
    "make_response",
    "ns_record",
    "parse_zone_text",
    "serialize_records",
]
