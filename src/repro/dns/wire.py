"""RFC 1035 wire-format encoder/decoder with name compression.

The encoder compresses every name against previously-emitted names using
the classic pointer scheme (§4.1.4). The decoder resolves pointers with
loop protection and enforces the 255-octet name limit.

These codecs let the rest of the library write genuine DNS packets into
pcap files (:mod:`repro.pcap`) and parse them back, so the analysis
pipeline can be exercised from packet captures as well as from Zeek-style
logs.
"""

from __future__ import annotations

import struct

from repro.dns.message import Flags, Message, Question
from repro.dns.name import DomainName, MAX_NAME_WIRE_LENGTH
from repro.dns.rr import (
    AAAARecordData,
    ARecordData,
    MXRecordData,
    NameRecordData,
    OpaqueRecordData,
    RData,
    ResourceRecord,
    RRClass,
    RRType,
    SOARecordData,
    SRVRecordData,
    TXTRecordData,
)
from repro.errors import WireFormatError

_HEADER = struct.Struct("!HHHHHH")
_POINTER_MASK = 0xC000
_MAX_POINTER_TARGET = 0x3FFF

_NAME_RDATA_TYPES = frozenset({RRType.CNAME, RRType.NS, RRType.PTR})


class NameCompressor:
    """Tracks label-suffix offsets while encoding one message."""

    def __init__(self) -> None:
        self._offsets: dict[tuple[str, ...], int] = {}

    def encode_name(self, name: DomainName, out: bytearray) -> None:
        """Append the (possibly compressed) encoding of *name* to *out*."""
        labels = name.labels
        folded = name.folded().split(".") if not name.is_root() else []
        for index in range(len(labels)):
            suffix = tuple(folded[index:])
            known = self._offsets.get(suffix)
            if known is not None:
                out += struct.pack("!H", _POINTER_MASK | known)
                return
            if len(out) <= _MAX_POINTER_TARGET:
                self._offsets[suffix] = len(out)
            label_bytes = labels[index].encode("ascii")
            out.append(len(label_bytes))
            out += label_bytes
        out.append(0)


def _encode_rdata(record: ResourceRecord, compressor: NameCompressor, out: bytearray) -> None:
    """Append RDLENGTH and RDATA for *record* to *out*."""
    length_at = len(out)
    out += b"\x00\x00"  # placeholder for RDLENGTH
    start = len(out)
    rdata = record.rdata
    if isinstance(rdata, (ARecordData, AAAARecordData, TXTRecordData, OpaqueRecordData)):
        out += rdata.to_wire()
    elif isinstance(rdata, NameRecordData):
        compressor.encode_name(rdata.target, out)
    elif isinstance(rdata, MXRecordData):
        out += struct.pack("!H", rdata.preference)
        compressor.encode_name(rdata.exchange, out)
    elif isinstance(rdata, SOARecordData):
        compressor.encode_name(rdata.mname, out)
        compressor.encode_name(rdata.rname, out)
        out += struct.pack(
            "!IIIII", rdata.serial, rdata.refresh, rdata.retry, rdata.expire, rdata.minimum
        )
    elif isinstance(rdata, SRVRecordData):
        # RFC 2782: the SRV target must not be compressed, but offsets for it
        # may still be recorded; we emit it uncompressed for compatibility.
        out += struct.pack("!HHH", rdata.priority, rdata.weight, rdata.port)
        for label in rdata.target.labels:
            encoded = label.encode("ascii")
            out.append(len(encoded))
            out += encoded
        out.append(0)
    else:  # pragma: no cover - RData union is closed
        raise WireFormatError(f"cannot encode RDATA of type {type(rdata).__name__}")
    rdlength = len(out) - start
    if rdlength > 0xFFFF:
        raise WireFormatError(f"RDATA exceeds 65535 octets ({rdlength})")
    out[length_at:length_at + 2] = struct.pack("!H", rdlength)


def _encode_record(record: ResourceRecord, compressor: NameCompressor, out: bytearray) -> None:
    compressor.encode_name(record.name, out)
    out += struct.pack("!HHI", int(record.rtype), int(record.rclass), record.ttl)
    _encode_rdata(record, compressor, out)


def encode_message(message: Message) -> bytes:
    """Encode *message* into RFC 1035 wire format with name compression."""
    out = bytearray()
    out += _HEADER.pack(
        message.msg_id,
        message.flags.to_wire_bits(),
        len(message.questions),
        len(message.answers),
        len(message.authorities),
        len(message.additionals),
    )
    compressor = NameCompressor()
    for question in message.questions:
        compressor.encode_name(question.qname, out)
        out += struct.pack("!HH", int(question.qtype), int(question.qclass))
    for section in (message.answers, message.authorities, message.additionals):
        for record in section:
            _encode_record(record, compressor, out)
    return bytes(out)


class _Reader:
    """Cursor over a wire-format message with pointer-safe name decoding."""

    def __init__(self, data: bytes):
        self.data = data
        self.offset = 0

    def need(self, count: int) -> None:
        """Raise :class:`WireFormatError` unless *count* octets remain."""
        if self.offset + count > len(self.data):
            raise WireFormatError(
                f"message truncated: need {count} octets at offset {self.offset}"
            )

    def read(self, count: int) -> bytes:
        """Consume and return the next *count* octets."""
        self.need(count)
        chunk = self.data[self.offset:self.offset + count]
        self.offset += count
        return chunk

    def read_u8(self) -> int:
        """Consume one octet as an unsigned integer."""
        return self.read(1)[0]

    def read_u16(self) -> int:
        """Consume two octets as a network-order unsigned integer."""
        return struct.unpack("!H", self.read(2))[0]

    def read_u32(self) -> int:
        """Consume four octets as a network-order unsigned integer."""
        return struct.unpack("!I", self.read(4))[0]

    def read_name(self) -> DomainName:
        """Decode a possibly-compressed name starting at the cursor."""
        labels = self._name_labels(self.offset, set())
        name = DomainName.from_labels(labels)
        if name.wire_length() > MAX_NAME_WIRE_LENGTH:
            raise WireFormatError(f"decoded name exceeds limit: {name}")
        return name

    def _name_labels(self, offset: int, visited: set[int]) -> list[str]:
        labels: list[str] = []
        jumped = False
        while True:
            if offset >= len(self.data):
                raise WireFormatError("name runs past end of message")
            length = self.data[offset]
            if length & 0xC0 == 0xC0:
                if offset + 1 >= len(self.data):
                    raise WireFormatError("truncated compression pointer")
                target = ((length & 0x3F) << 8) | self.data[offset + 1]
                if target in visited:
                    raise WireFormatError("compression pointer loop")
                visited.add(target)
                if not jumped:
                    self.offset = offset + 2
                    jumped = True
                offset = target
                continue
            if length & 0xC0:
                raise WireFormatError(f"reserved label type 0x{length & 0xC0:02x}")
            if length == 0:
                if not jumped:
                    self.offset = offset + 1
                return labels
            if offset + 1 + length > len(self.data):
                raise WireFormatError("label runs past end of message")
            raw = self.data[offset + 1:offset + 1 + length]
            try:
                labels.append(raw.decode("ascii"))
            except UnicodeDecodeError as exc:
                raise WireFormatError(f"non-ASCII label {raw!r}") from exc
            if len(labels) > 127:
                raise WireFormatError("too many labels in name")
            offset += 1 + length


def _decode_rdata(reader: _Reader, rtype: RRType, rdlength: int) -> RData:
    end = reader.offset + rdlength
    if end > len(reader.data):
        raise WireFormatError("RDATA runs past end of message")
    if rtype == RRType.A:
        rdata: RData = ARecordData.from_wire(reader.read(rdlength))
    elif rtype == RRType.AAAA:
        rdata = AAAARecordData.from_wire(reader.read(rdlength))
    elif rtype in _NAME_RDATA_TYPES:
        rdata = NameRecordData(reader.read_name())
    elif rtype == RRType.MX:
        preference = reader.read_u16()
        rdata = MXRecordData(preference, reader.read_name())
    elif rtype == RRType.TXT:
        rdata = TXTRecordData.from_wire(reader.read(rdlength))
    elif rtype == RRType.SOA:
        mname = reader.read_name()
        rname = reader.read_name()
        serial = reader.read_u32()
        refresh = reader.read_u32()
        retry = reader.read_u32()
        expire = reader.read_u32()
        minimum = reader.read_u32()
        rdata = SOARecordData(mname, rname, serial, refresh, retry, expire, minimum)
    elif rtype == RRType.SRV:
        priority = reader.read_u16()
        weight = reader.read_u16()
        port = reader.read_u16()
        rdata = SRVRecordData(priority, weight, port, reader.read_name())
    else:
        rdata = OpaqueRecordData(reader.read(rdlength))
    if reader.offset != end:
        raise WireFormatError(
            f"RDATA length mismatch for {rtype.name}: "
            f"declared {rdlength}, consumed {rdlength - (end - reader.offset)}"
        )
    return rdata


def _decode_record(reader: _Reader) -> ResourceRecord:
    name = reader.read_name()
    raw_type = reader.read_u16()
    try:
        rtype = RRType(raw_type)
    except ValueError:
        rtype = None  # type: ignore[assignment]
    raw_class = reader.read_u16()
    ttl = reader.read_u32()
    rdlength = reader.read_u16()
    if rtype is None:
        data = reader.read(rdlength)
        # Preserve unknown types as OPT-like opaque records under ANY class.
        raise WireFormatError(f"unsupported RR type {raw_type} for {name}")
    try:
        rclass = RRClass(raw_class)
    except ValueError as exc:
        raise WireFormatError(f"unsupported RR class {raw_class}") from exc
    if ttl > 0x7FFFFFFF:
        # RFC 2181 §8: treat TTLs with the high bit set as zero.
        ttl = 0
    rdata = _decode_rdata(reader, rtype, rdlength)
    return ResourceRecord(name, rtype, rdata, ttl, rclass)


def encode_message_tcp(message: Message) -> bytes:
    """Encode *message* with the 2-octet length prefix of DNS-over-TCP.

    RFC 1035 §4.2.2 (also used by DNS-over-TLS, RFC 7858): each message
    on a stream transport is preceded by its length.
    """
    payload = encode_message(message)
    if len(payload) > 0xFFFF:
        raise WireFormatError(f"message too large for TCP framing: {len(payload)} octets")
    return struct.pack("!H", len(payload)) + payload


def decode_message_stream(data: bytes) -> list[Message]:
    """Decode a concatenation of length-prefixed DNS messages.

    Parses a DNS-over-TCP/TLS stream payload into individual messages;
    raises :class:`WireFormatError` on truncation or trailing garbage.
    """
    messages: list[Message] = []
    offset = 0
    while offset < len(data):
        if offset + 2 > len(data):
            raise WireFormatError("stream ends inside a length prefix")
        (length,) = struct.unpack("!H", data[offset:offset + 2])
        offset += 2
        if offset + length > len(data):
            raise WireFormatError(
                f"stream ends inside a message (need {length} octets, have {len(data) - offset})"
            )
        messages.append(decode_message(data[offset:offset + length]))
        offset += length
    return messages


def decode_message(data: bytes) -> Message:
    """Decode *data* (one UDP DNS payload) into a :class:`Message`."""
    if len(data) < _HEADER.size:
        raise WireFormatError(f"message shorter than header: {len(data)} octets")
    reader = _Reader(data)
    msg_id, flag_bits, qdcount, ancount, nscount, arcount = _HEADER.unpack(
        reader.read(_HEADER.size)
    )
    flags = Flags.from_wire_bits(flag_bits)
    questions = []
    for _ in range(qdcount):
        qname = reader.read_name()
        raw_qtype = reader.read_u16()
        raw_qclass = reader.read_u16()
        try:
            qtype = RRType(raw_qtype)
            qclass = RRClass(raw_qclass)
        except ValueError as exc:
            raise WireFormatError(
                f"unsupported question type/class {raw_qtype}/{raw_qclass}"
            ) from exc
        questions.append(Question(qname, qtype, qclass))
    sections: list[tuple[ResourceRecord, ...]] = []
    for count in (ancount, nscount, arcount):
        records = tuple(_decode_record(reader) for _ in range(count))
        sections.append(records)
    return Message(
        msg_id=msg_id,
        flags=flags,
        questions=tuple(questions),
        answers=sections[0],
        authorities=sections[1],
        additionals=sections[2],
    )
