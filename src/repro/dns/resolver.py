"""Recursive and stub resolver models.

:class:`RecursiveResolver` models a shared resolver platform (the local
ISP resolvers, Google Public DNS, OpenDNS, Cloudflare in the paper's
Table 1). Each platform has a client-facing latency model, a shared
cache, a latency model toward authoritative servers, and a *cache
effectiveness* knob modelling frontend sharding: large anycast platforms
spread queries over many cache nodes, so a record cached "somewhere" in
the platform is not always visible to the node a query lands on. This is
the mechanism behind the paper's observation that Google's effective
shared-cache hit rate (23.0%) is far below the ISP's (71.2%).

:class:`StubResolver` models the client side: an on-device (or in-home
forwarder) cache probed first, and one or more upstream recursive
resolvers used on a miss. Stub caches may overstay TTLs, reproducing the
TTL violations §5.2 measures.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass

from repro.dns.cache import CacheKey, CacheLookup, DnsCache, cache_key
from repro.dns.message import Question, Rcode
from repro.dns.name import DomainName
from repro.dns.rr import NameRecordData, ResourceRecord, RRType
from repro.dns.zone import DnsHierarchy
from repro.errors import NameError_, ResolutionError, ZoneError
from repro.simulation.faults import ConnectionBudget, FaultKind, FaultPlan, RetryPolicy
from repro.simulation.latency import (
    LatencyModel,
    authoritative_latency,
    continental_latency,
    metro_latency,
    regional_latency,
)

_NS_CACHE_PREFIX = "\x00delegation\x00"
_NEGATIVE_TTL = 300.0
_PROCESSING_DELAY = 0.0002


@dataclass(frozen=True, slots=True)
class ResolverProfile:
    """Static description of one recursive resolver platform.

    ``cache_effectiveness`` models frontend sharding: the probability
    that a record cached somewhere in the platform is visible to the
    node a query lands on. ``background_scale`` models the platform's
    *other* clients: a resolver serving a whole ISP (or the world) has
    its cache kept warm by traffic the monitored houses never see. It
    multiplies the name's observed query rate to estimate how likely an
    external client refreshed the entry within its TTL.
    """

    platform: str
    address: str
    client_latency_model: LatencyModel
    auth_latency_model: LatencyModel
    cache_effectiveness: float = 1.0
    background_scale: float = 0.0
    cache_capacity: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.cache_effectiveness <= 1.0:
            raise ResolutionError(
                f"cache_effectiveness must be in [0, 1], got {self.cache_effectiveness}"
            )
        if self.background_scale < 0:
            raise ResolutionError(
                f"background_scale cannot be negative, got {self.background_scale}"
            )


@dataclass(frozen=True, slots=True)
class ResolutionOutcome:
    """What one query to a recursive resolver produced.

    ``timed_out`` marks a query that never got a response (the monitor
    logs Zeek's ``-`` rcode); ``servfail`` an explicit error response;
    ``truncated`` a UDP answer that forced a TCP retry (visible only as
    extra latency); ``resource_exhausted`` a query shed by a resolver
    whose connection/fd budget was full (logged as REFUSED, and fed to
    the stub's failover machinery like any other hard failure). NXDOMAIN
    remains a *successful* transaction carrying a negative answer.
    """

    qname: DomainName
    qtype: RRType
    records: tuple[ResourceRecord, ...]
    duration_s: float
    cache_hit: bool
    auth_queries: int
    nxdomain: bool = False
    timed_out: bool = False
    servfail: bool = False
    truncated: bool = False
    resource_exhausted: bool = False

    def addresses(self) -> tuple[str, ...]:
        """IP addresses among the answer records."""
        return tuple(rr.address for rr in self.records if rr.is_address())

    @property
    def failed(self) -> bool:
        """Did the transaction fail outright (no usable response)?"""
        return self.timed_out or self.servfail or self.resource_exhausted

    @property
    def rcode_name(self) -> str:
        """The rcode string a Zeek-style monitor would log for this outcome."""
        if self.timed_out:
            return "-"
        if self.servfail:
            return "SERVFAIL"
        if self.resource_exhausted:
            return "REFUSED"
        if self.nxdomain:
            return "NXDOMAIN"
        return "NOERROR"


class RecursiveResolver:
    """A shared recursive resolver platform resolving against a hierarchy."""

    def __init__(
        self,
        profile: ResolverProfile,
        hierarchy: DnsHierarchy,
        rng: random.Random | None = None,
        faults: FaultPlan | None = None,
        cache: DnsCache | None = None,
        connection_budget: ConnectionBudget | None = None,
    ):
        self.profile = profile
        self.hierarchy = hierarchy
        self.cache = cache if cache is not None else DnsCache(capacity=profile.cache_capacity)
        self._rng = rng if rng is not None else random.Random(0)
        self._faults = faults
        self._budget = connection_budget
        # Per-name demand estimates for background-population warming:
        # key -> [query count, first seen, last known TTL].
        self._demand: dict[CacheKey, list[float]] = {}
        # Memoized delegation cache keys (origin folded -> key) and
        # question objects (both immutable): resolution revisits the same
        # bounded set of zones and names for the whole scenario.
        self._delegation_keys: dict[str, CacheKey] = {}
        self._questions: dict[tuple[str, int], Question] = {}
        # RFC 2308 negative cache: key -> (expires at, was NXDOMAIN).
        self._negative: dict[CacheKey, tuple[float, bool]] = {}
        self.queries_served = 0
        self.authoritative_queries = 0
        self.background_hits = 0
        self.fault_timeouts = 0
        self.fault_servfails = 0
        self.fault_nxdomains = 0
        self.fault_truncations = 0
        self.connections_refused = 0

    @property
    def platform(self) -> str:
        """The platform label of this resolver's profile."""
        return self.profile.platform

    @property
    def address(self) -> str:
        """The IPv4 address clients send queries to."""
        return self.profile.address

    def resolve(
        self,
        qname: DomainName | str,
        now: float,
        qtype: RRType = RRType.A,
        rng: random.Random | None = None,
    ) -> ResolutionOutcome:
        """Resolve *qname*/*qtype* at simulated time *now*.

        The returned duration covers the full client-observed transaction:
        one client<->resolver round trip plus any authoritative chasing,
        plus any time spent queued for a connection slot when the
        platform runs a :class:`ConnectionBudget`. A shed connection
        returns immediately with ``resource_exhausted`` set (REFUSED).
        """
        rng = rng if rng is not None else self._rng
        name = qname if isinstance(qname, DomainName) else DomainName.intern(qname)
        budget = self._budget
        if budget is None:
            return self._dispatch(name, qtype, now, rng)
        wait_s = budget.admit(now)
        if wait_s is None:
            # Out of connection slots and the queue is too deep: shed.
            self.connections_refused += 1
            self.queries_served += 1
            duration = self.profile.client_latency_model.sample(rng) + _PROCESSING_DELAY
            return ResolutionOutcome(
                qname=name,
                qtype=qtype,
                records=(),
                duration_s=duration,
                cache_hit=False,
                auth_queries=0,
                resource_exhausted=True,
            )
        start_s = now + wait_s
        outcome = self._dispatch(name, qtype, start_s, rng)
        budget.occupy(start_s, start_s + outcome.duration_s)
        if wait_s > 0.0:
            outcome = dataclasses.replace(outcome, duration_s=outcome.duration_s + wait_s)
        return outcome

    def _dispatch(
        self,
        name: DomainName,
        qtype: RRType,
        now: float,
        rng: random.Random,
    ) -> ResolutionOutcome:
        """Route one admitted query through the fault plan or clean path."""
        if self._faults is not None:
            decision = self._faults.decide(self.platform, name.folded(), now)
            if decision.kind is not FaultKind.NONE:
                return self._faulted_resolve(decision.kind, name, qtype, now, rng)
        return self._resolve_clean(name, qtype, now, rng)

    def _faulted_resolve(
        self,
        kind: FaultKind,
        name: DomainName,
        qtype: RRType,
        now: float,
        rng: random.Random,
    ) -> ResolutionOutcome:
        """Produce the outcome the fault plan dictated for this query.

        Timeouts are answer-less and free of duration — the *client's*
        retry policy decides how long it waits. Injected SERVFAIL and
        NXDOMAIN cost one client round trip; neither touches the cache or
        demand bookkeeping (the platform never did the work). Truncation
        resolves normally, then pays one extra round trip plus the TCP
        fallback penalty.
        """
        if kind is FaultKind.TIMEOUT:
            self.fault_timeouts += 1
            return ResolutionOutcome(
                qname=name,
                qtype=qtype,
                records=(),
                duration_s=0.0,
                cache_hit=False,
                auth_queries=0,
                timed_out=True,
            )
        if kind is FaultKind.SERVFAIL:
            self.fault_servfails += 1
            self.queries_served += 1
            duration = self.profile.client_latency_model.sample(rng) + _PROCESSING_DELAY
            return ResolutionOutcome(
                qname=name,
                qtype=qtype,
                records=(),
                duration_s=duration,
                cache_hit=False,
                auth_queries=0,
                servfail=True,
            )
        if kind is FaultKind.NXDOMAIN:
            self.fault_nxdomains += 1
            self.queries_served += 1
            duration = self.profile.client_latency_model.sample(rng) + _PROCESSING_DELAY
            return ResolutionOutcome(
                qname=name,
                qtype=qtype,
                records=(),
                duration_s=duration,
                cache_hit=False,
                auth_queries=0,
                nxdomain=True,
            )
        assert kind is FaultKind.TRUNCATION and self._faults is not None
        self.fault_truncations += 1
        outcome = self._resolve_clean(name, qtype, now, rng)
        penalty = (
            self.profile.client_latency_model.sample(rng)
            + self._faults.config.tcp_fallback_penalty_s
        )
        return dataclasses.replace(
            outcome, duration_s=outcome.duration_s + penalty, truncated=True
        )

    def _resolve_clean(
        self,
        name: DomainName,
        qtype: RRType,
        now: float,
        rng: random.Random,
    ) -> ResolutionOutcome:
        """The fault-free resolution path (cache, negative cache, chase)."""
        self.queries_served += 1
        profile = self.profile
        duration = profile.client_latency_model.sample(rng) + _PROCESSING_DELAY

        key = cache_key(name, qtype)
        demand = self._demand.get(key)
        if demand is None:
            demand = [0.0, now, 0.0]
            self._demand[key] = demand
        demand[0] += 1.0

        cached = self.cache.peek(key)
        visible = (
            cached is not None
            and not cached.is_expired(now)
            and rng.random() < profile.cache_effectiveness
        )
        if visible:
            lookup = self.cache.get(key, now)
            if lookup.hit and not lookup.expired:
                return ResolutionOutcome(
                    qname=name,
                    qtype=qtype,
                    records=lookup.records,
                    duration_s=duration,
                    cache_hit=True,
                    auth_queries=0,
                    nxdomain=not lookup.records,
                )
        negative = self._negative.get(key)
        if negative is not None:
            expires_at, was_nxdomain = negative
            if now < expires_at and rng.random() < profile.cache_effectiveness:
                # RFC 2308 negative caching: the non-answer is itself
                # cached, so repeat misses are fast.
                return ResolutionOutcome(
                    qname=name,
                    qtype=qtype,
                    records=(),
                    duration_s=duration,
                    cache_hit=True,
                    auth_queries=0,
                    nxdomain=was_nxdomain,
                )
            if now >= expires_at:
                del self._negative[key]
        if self._background_warm(key, now, rng):
            # Some external client of the platform refreshed this entry
            # within its TTL; the answer is in cache even though none of
            # the monitored houses put it there.
            records, _, nxdomain = self._resolve_authoritatively(name, qtype, now, rng)
            if records:
                ttl = float(min(rr.ttl for rr in records))
                age = rng.uniform(0.0, 0.8 * ttl) if ttl > 0 else 0.0
                aged = tuple(rr.with_ttl(max(0, int(rr.ttl - age))) for rr in records)
                self.background_hits += 1
                return ResolutionOutcome(
                    qname=name,
                    qtype=qtype,
                    records=aged,
                    duration_s=duration,
                    cache_hit=True,
                    auth_queries=0,
                    nxdomain=nxdomain,
                )
        records, auth_queries, nxdomain = self._resolve_authoritatively(name, qtype, now, rng)
        if records:
            demand[2] = float(min(rr.ttl for rr in records))
        else:
            self._negative[key] = (now + _NEGATIVE_TTL, nxdomain)
        for _ in range(auth_queries):
            duration += profile.auth_latency_model.sample(rng)
        return ResolutionOutcome(
            qname=name,
            qtype=qtype,
            records=records,
            duration_s=duration,
            cache_hit=False,
            auth_queries=auth_queries,
            nxdomain=nxdomain,
        )

    # -- internals -------------------------------------------------------

    def _background_warm(self, key: CacheKey, now: float, rng: random.Random) -> bool:
        """Did the platform's external population keep this entry warm?

        The name's demand among the monitored houses, scaled by the
        platform's ``background_scale``, estimates the external query
        rate; the entry is warm if at least one external query landed
        within the last TTL window (Poisson arrival assumption), and the
        serving frontend shard actually holds it.
        """
        if self.profile.background_scale <= 0:
            return False
        count, first_seen, last_ttl = self._demand[key]
        if last_ttl <= 0 or count < 1:
            return False
        observed_rate = count / max(now - first_seen, 300.0)
        external_rate = observed_rate * self.profile.background_scale
        p_warm = 1.0 - math.exp(-external_rate * last_ttl)
        return rng.random() < p_warm * self.profile.cache_effectiveness

    def _delegation_key(self, origin: DomainName) -> CacheKey:
        folded = origin.folded()
        key = self._delegation_keys.get(folded)
        if key is None:
            key = (_NS_CACHE_PREFIX + folded, int(RRType.NS))
            self._delegation_keys[folded] = key
        return key

    def _resolve_authoritatively(
        self,
        name: DomainName,
        qtype: RRType,
        now: float,
        rng: random.Random,
        depth: int = 0,
    ) -> tuple[tuple[ResourceRecord, ...], int, bool]:
        """Iteratively resolve, returning (records, auth queries, nxdomain)."""
        if depth > 8:
            raise ResolutionError(f"resolution of {name} exceeded CNAME depth limit")
        try:
            path = self.hierarchy.resolution_path(name)
        except (ZoneError, NameError_) as exc:
            raise ResolutionError(f"cannot resolve {name}: {exc}") from exc

        # Skip hops whose delegation is already cached; a real resolver
        # keeps NS records for the zones it has visited.
        start_index = 0
        for index, server in enumerate(path[1:], start=1):
            zone = server.zone_for(name)
            if zone is None:
                continue
            hit, expired = self.cache.probe(self._delegation_key(zone.origin), now)
            if hit and not expired:
                start_index = index
        auth_queries = 0
        answer_records: tuple[ResourceRecord, ...] = ()
        nxdomain = False
        question_key = (name.folded(), int(qtype))
        question = self._questions.get(question_key)
        if question is None:
            question = Question(name, qtype)
            self._questions[question_key] = question
        for server in path[start_index:]:
            auth_queries += 1
            self.authoritative_queries += 1
            answer = server.query(question, requester=self.platform)
            if answer.is_referral:
                referral = answer.referral
                assert referral is not None
                self.cache.put(
                    self._delegation_key(referral.zone),
                    referral.ns_records,
                    now,
                )
                continue
            if answer.rcode == Rcode.NXDOMAIN:
                nxdomain = True
                break
            answer_records = answer.answers
            break

        if nxdomain or not answer_records:
            # Negative-cache the non-answer briefly so repeat misses are
            # served from cache, as RFC 2308 prescribes.
            return (), auth_queries, nxdomain

        addresses = [rr for rr in answer_records if rr.is_address()]
        if not addresses and qtype in (RRType.A, RRType.AAAA):
            cname = next((rr for rr in answer_records if rr.rtype == RRType.CNAME), None)
            if cname is not None:
                assert isinstance(cname.rdata, NameRecordData)
                chased, extra_queries, chased_nx = self._resolve_authoritatively(
                    cname.rdata.target, qtype, now, rng, depth + 1
                )
                answer_records = answer_records + chased
                auth_queries += extra_queries
                nxdomain = chased_nx

        if answer_records:
            self.cache.put(cache_key(name, qtype), answer_records, now)
        return answer_records, auth_queries, nxdomain


@dataclass(frozen=True, slots=True)
class StubLookup:
    """What a device-side name lookup produced.

    ``network_transaction`` is True when the lookup went out on the wire
    (and is therefore visible to a passive monitor); it is False when the
    local cache answered.
    """

    qname: DomainName
    qtype: RRType
    records: tuple[ResourceRecord, ...]
    duration_s: float
    network_transaction: bool
    resolver_address: str | None = None
    resolver_platform: str | None = None
    outcome: ResolutionOutcome | None = None
    cache_result: CacheLookup | None = None

    def addresses(self) -> tuple[str, ...]:
        """IP addresses among the returned records."""
        return tuple([rr.address for rr in self.records if rr.is_address()])

    @property
    def used_expired_record(self) -> bool:
        """True when a TTL-expired local-cache entry satisfied the lookup."""
        return bool(self.cache_result and self.cache_result.expired)


class StubResolver:
    """Device-side resolution: local cache first, then weighted upstreams."""

    def __init__(
        self,
        upstreams: list[tuple[RecursiveResolver, float]],
        cache: DnsCache | None = None,
        rng: random.Random | None = None,
        retry: RetryPolicy | None = None,
        connection_budget: ConnectionBudget | None = None,
    ):
        if not upstreams:
            raise ResolutionError("a stub resolver needs at least one upstream")
        total_weight = sum(weight for _, weight in upstreams)
        if total_weight <= 0:
            raise ResolutionError("upstream weights must sum to a positive value")
        self._upstreams = upstreams
        self._total_weight = total_weight
        self.cache = cache if cache is not None else DnsCache()
        self._rng = rng if rng is not None else random.Random(0)
        self._retry = retry if retry is not None else RetryPolicy()
        self._budget = connection_budget
        #: Lookups dropped on-device because the stub's own fd budget
        #: was exhausted (no wire transaction ever happened).
        self.local_sheds = 0

    def pick_upstream(self, rng: random.Random | None = None) -> RecursiveResolver:
        """Choose an upstream resolver proportionally to its weight."""
        rng = rng if rng is not None else self._rng
        target = rng.random() * self._total_weight
        acc = 0.0
        for resolver, weight in self._upstreams:
            acc += weight
            if target < acc:
                return resolver
        return self._upstreams[-1][0]

    def lookup(
        self,
        qname: DomainName | str,
        now: float,
        qtype: RRType = RRType.A,
        rng: random.Random | None = None,
        bypass_cache: bool = False,
    ) -> StubLookup:
        """Resolve *qname* as an application on the device would.

        ``bypass_cache`` forces a network transaction (used to model
        applications and prefetchers that always query).
        """
        rng = rng if rng is not None else self._rng
        name = qname if isinstance(qname, DomainName) else DomainName.intern(qname)
        key = cache_key(name, qtype)
        if not bypass_cache:
            cached = self.cache.get(key, now)
            if cached.hit:
                # Positional construction (field order per StubLookup):
                # this and the wire-path return below run once per lookup.
                return StubLookup(name, qtype, cached.records, 0.0, False, None, None, None, cached)
        queue_wait_s = 0.0
        if self._budget is not None:
            admitted = self._budget.admit(now)
            if admitted is None:
                # The device itself is out of sockets: the lookup dies
                # locally, before any wire transaction.
                self.local_sheds += 1
                shed = ResolutionOutcome(
                    qname=name,
                    qtype=qtype,
                    records=(),
                    duration_s=0.0,
                    cache_hit=False,
                    auth_queries=0,
                    resource_exhausted=True,
                )
                return StubLookup(name, qtype, (), 0.0, False, None, None, shed, None)
            queue_wait_s = admitted
        start_s = now + queue_wait_s
        resolver = self.pick_upstream(rng)
        outcome = resolver.resolve(name, start_s, qtype, rng)
        waited_s = queue_wait_s
        if outcome.timed_out:
            outcome, resolver, retry_waited_s = self._retry_after_timeout(
                name, qtype, start_s, rng, resolver
            )
            waited_s += retry_waited_s
        elif outcome.resource_exhausted:
            outcome, resolver, retry_waited_s = self._failover_after_refusal(
                name, qtype, start_s, rng, resolver, outcome
            )
            waited_s += retry_waited_s
        if self._budget is not None:
            self._budget.occupy(start_s, now + waited_s + outcome.duration_s)
        if outcome.records:
            self.cache.put(key, outcome.records, now + waited_s + outcome.duration_s)
        return StubLookup(
            name,
            qtype,
            outcome.records,
            waited_s + outcome.duration_s,
            True,
            resolver.address,
            resolver.platform,
            outcome,
        )

    def _retry_after_timeout(
        self,
        name: DomainName,
        qtype: RRType,
        now: float,
        rng: random.Random,
        primary: RecursiveResolver,
    ) -> tuple[ResolutionOutcome, RecursiveResolver, float]:
        """Run the bounded retransmit/failover schedule after a timeout.

        The original query to *primary* has already timed out. Each
        further attempt is issued after waiting out the previous
        attempt's timeout; after exhausting the per-upstream schedule the
        stub fails over to the next configured upstream (at most
        ``max_failovers`` of them). Returns the final outcome, the
        upstream that produced it, and the total time spent waiting on
        dead attempts. When every attempt times out, the outcome is the
        last timed-out one and the wait equals the whole retry budget.
        """
        policy = self._retry
        timeouts = policy.schedule()
        chain: list[RecursiveResolver] = [primary]
        for upstream, _ in self._upstreams:
            if len(chain) > policy.max_failovers:
                break
            if upstream is not primary:
                chain.append(upstream)
        waited_s = timeouts[0]
        last = ResolutionOutcome(
            qname=name,
            qtype=qtype,
            records=(),
            duration_s=0.0,
            cache_hit=False,
            auth_queries=0,
            timed_out=True,
        )
        resolver = primary
        for upstream_index, upstream in enumerate(chain):
            for attempt, timeout_s in enumerate(timeouts):
                if upstream_index == 0 and attempt == 0:
                    continue  # the original query, already timed out
                outcome = upstream.resolve(name, now + waited_s, qtype, rng)
                if not outcome.timed_out:
                    return outcome, upstream, waited_s
                last, resolver = outcome, upstream
                waited_s += timeout_s
        return last, resolver, waited_s

    def _failover_after_refusal(
        self,
        name: DomainName,
        qtype: RRType,
        now: float,
        rng: random.Random,
        primary: RecursiveResolver,
        refused: ResolutionOutcome,
    ) -> tuple[ResolutionOutcome, RecursiveResolver, float]:
        """Fail over after an upstream shed the query (REFUSED).

        Unlike a timeout, a REFUSED response arrives quickly and
        explicitly, so the stub does not wait out its retransmit
        schedule — it retries the next configured upstream immediately
        (at most ``max_failovers`` of them), falling back to the timeout
        schedule only when a failover target itself goes silent. Returns
        the final outcome, the upstream that produced it, and the time
        spent on dead attempts (the returned outcome's own duration is
        the caller's to add, matching :meth:`_retry_after_timeout`).
        """
        policy = self._retry
        timeouts = policy.schedule()
        waited_s = 0.0
        # Cost of the current failure, charged only once another attempt
        # is actually issued (the final failure's cost is the caller's).
        pending_s = refused.duration_s
        last, resolver = refused, primary
        failovers = 0
        for upstream, _ in self._upstreams:
            if upstream is primary:
                continue
            if failovers >= policy.max_failovers:
                break
            failovers += 1
            for timeout_s in timeouts:
                waited_s += pending_s
                outcome = upstream.resolve(name, now + waited_s, qtype, rng)
                if outcome.timed_out:
                    last, resolver, pending_s = outcome, upstream, timeout_s
                    continue
                if outcome.resource_exhausted:
                    # This upstream is shedding too; move to the next.
                    last, resolver, pending_s = outcome, upstream, outcome.duration_s
                    break
                return outcome, upstream, waited_s
        if last.timed_out:
            # A client that ends on a timeout waited that timeout out.
            waited_s += pending_s
        return last, resolver, waited_s


def build_platform_profiles() -> dict[str, ResolverProfile]:
    """Profiles for the four platforms of the paper's Table 1.

    RTTs follow §7: the ISP resolvers sit ~2 ms away, Cloudflare ~9-10 ms,
    Google and OpenDNS ~20 ms. Cache effectiveness is calibrated so the
    §7 shared-cache hit rates (Cloudflare 83.6%, ISP 71.2%, OpenDNS
    58.8%, Google 23.0%) emerge from the default workload.
    """
    return {
        "local": ResolverProfile(
            platform="local",
            address="192.168.200.10",
            client_latency_model=metro_latency(),
            auth_latency_model=authoritative_latency(),
            cache_effectiveness=0.60,
            background_scale=10.0,
        ),
        "google": ResolverProfile(
            platform="google",
            address="8.8.8.8",
            client_latency_model=continental_latency(),
            # Google chases authoritative servers from farther frontends
            # (longer median) but with tight engineering (shorter tail).
            auth_latency_model=LatencyModel(
                base_rtt_s=0.036,
                jitter_median=0.010,
                jitter_sigma=0.55,
                loss_probability=0.002,
            ),
            cache_effectiveness=0.22,
            background_scale=2.0,
        ),
        "opendns": ResolverProfile(
            platform="opendns",
            address="208.67.222.222",
            client_latency_model=continental_latency(),
            auth_latency_model=authoritative_latency(),
            cache_effectiveness=0.50,
            background_scale=8.0,
        ),
        "cloudflare": ResolverProfile(
            platform="cloudflare",
            address="1.1.1.1",
            client_latency_model=regional_latency(),
            auth_latency_model=authoritative_latency().scaled(0.9),
            cache_effectiveness=0.90,
            background_scale=110.0,
        ),
    }
