"""Master-file (zone file) parsing and serialization (RFC 1035 §5).

Supports the subset of the master-file syntax needed to define the
authoritative data this library serves: ``$ORIGIN`` and ``$TTL``
directives, relative and absolute owner names, the ``@`` origin
shorthand, blank-owner continuation (repeat the previous owner),
comments, and the record types the library models (A, AAAA, CNAME, NS,
PTR, MX, TXT, SOA, SRV).

Example::

    $ORIGIN example.com.
    $TTL 3600
    @       IN  SOA  ns1 hostmaster 2024010101 7200 900 1209600 300
    @       IN  NS   ns1
    ns1     IN  A    192.0.2.53
    www     300 IN A 192.0.2.80
    alias   IN  CNAME www
"""

from __future__ import annotations

import shlex

from repro.dns.name import DomainName
from repro.dns.rr import (
    AAAARecordData,
    ARecordData,
    MXRecordData,
    NameRecordData,
    ResourceRecord,
    RRClass,
    RRType,
    SOARecordData,
    SRVRecordData,
    TXTRecordData,
)
from repro.dns.zone import Zone
from repro.errors import ZoneError

_NAME_TYPES = {"CNAME": RRType.CNAME, "NS": RRType.NS, "PTR": RRType.PTR}


def _absolute(name_text: str, origin: DomainName) -> DomainName:
    """Resolve a possibly-relative owner/target name against *origin*."""
    if name_text == "@":
        return origin
    if name_text.endswith("."):
        return DomainName(name_text)
    relative = DomainName(name_text)
    return DomainName.from_labels(relative.labels + origin.labels)


def _parse_ttl(token: str) -> int | None:
    """Parse a TTL token, supporting 1h/30m/2d/1w suffixes."""
    units = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}
    text = token.lower()
    if text and text[-1] in units and text[:-1].isdigit():
        return int(text[:-1]) * units[text[-1]]
    if text.isdigit():
        return int(text)
    return None


def parse_zone_text(text: str, default_origin: str | None = None) -> list[ResourceRecord]:
    """Parse master-file *text* into resource records."""
    origin: DomainName | None = DomainName(default_origin) if default_origin else None
    default_ttl: int | None = None
    previous_owner: DomainName | None = None
    records: list[ResourceRecord] = []

    for number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].rstrip()
        if not line.strip():
            continue
        starts_with_space = line[0] in " \t"
        try:
            tokens = shlex.split(line, posix=True)
        except ValueError as exc:
            raise ZoneError(f"line {number}: {exc}") from exc
        if not tokens:
            continue

        if tokens[0] == "$ORIGIN":
            if len(tokens) != 2:
                raise ZoneError(f"line {number}: $ORIGIN needs exactly one argument")
            origin = DomainName(tokens[1])
            continue
        if tokens[0] == "$TTL":
            if len(tokens) != 2:
                raise ZoneError(f"line {number}: $TTL needs exactly one argument")
            ttl = _parse_ttl(tokens[1])
            if ttl is None:
                raise ZoneError(f"line {number}: bad $TTL value {tokens[1]!r}")
            default_ttl = ttl
            continue
        if tokens[0].startswith("$"):
            raise ZoneError(f"line {number}: unsupported directive {tokens[0]}")

        if origin is None:
            raise ZoneError(f"line {number}: no $ORIGIN in effect")

        # Owner: blank (continuation) or the first token.
        if starts_with_space:
            if previous_owner is None:
                raise ZoneError(f"line {number}: continuation line with no previous owner")
            owner = previous_owner
        else:
            owner = _absolute(tokens[0], origin)
            tokens = tokens[1:]
        previous_owner = owner

        # Optional TTL and class, in either order.
        ttl = default_ttl
        rclass = RRClass.IN
        while tokens:
            candidate = _parse_ttl(tokens[0])
            if candidate is not None:
                ttl = candidate
                tokens = tokens[1:]
                continue
            if tokens[0].upper() in ("IN", "CH", "HS"):
                rclass = RRClass[tokens[0].upper()]
                tokens = tokens[1:]
                continue
            break
        if not tokens:
            raise ZoneError(f"line {number}: missing record type")
        if ttl is None:
            raise ZoneError(f"line {number}: no TTL (set $TTL or specify per record)")
        type_token = tokens[0].upper()
        rdata_tokens = tokens[1:]
        records.append(
            _build_record(number, owner, type_token, rdata_tokens, ttl, rclass, origin)
        )
    return records


def _build_record(
    number: int,
    owner: DomainName,
    type_token: str,
    rdata: list[str],
    ttl: int,
    rclass: RRClass,
    origin: DomainName,
) -> ResourceRecord:
    def need(count: int) -> None:
        if len(rdata) != count:
            raise ZoneError(
                f"line {number}: {type_token} expects {count} RDATA tokens, got {len(rdata)}"
            )

    if type_token == "A":
        need(1)
        return ResourceRecord(owner, RRType.A, ARecordData(rdata[0]), ttl, rclass)
    if type_token == "AAAA":
        need(1)
        return ResourceRecord(owner, RRType.AAAA, AAAARecordData(rdata[0]), ttl, rclass)
    if type_token in _NAME_TYPES:
        need(1)
        target = _absolute(rdata[0], origin)
        return ResourceRecord(owner, _NAME_TYPES[type_token], NameRecordData(target), ttl, rclass)
    if type_token == "MX":
        need(2)
        return ResourceRecord(
            owner, RRType.MX,
            MXRecordData(int(rdata[0]), _absolute(rdata[1], origin)), ttl, rclass,
        )
    if type_token == "TXT":
        if not rdata:
            raise ZoneError(f"line {number}: TXT needs at least one string")
        return ResourceRecord(owner, RRType.TXT, TXTRecordData.from_text(*rdata), ttl, rclass)
    if type_token == "SOA":
        need(7)
        return ResourceRecord(
            owner, RRType.SOA,
            SOARecordData(
                _absolute(rdata[0], origin),
                _absolute(rdata[1], origin),
                int(rdata[2]), int(rdata[3]), int(rdata[4]), int(rdata[5]), int(rdata[6]),
            ), ttl, rclass,
        )
    if type_token == "SRV":
        need(4)
        return ResourceRecord(
            owner, RRType.SRV,
            SRVRecordData(int(rdata[0]), int(rdata[1]), int(rdata[2]), _absolute(rdata[3], origin)),
            ttl, rclass,
        )
    raise ZoneError(f"line {number}: unsupported record type {type_token}")


def load_zone_text(text: str, origin: str) -> Zone:
    """Parse *text* into a :class:`~repro.dns.zone.Zone` rooted at *origin*."""
    zone = Zone(origin)
    for record in parse_zone_text(text, default_origin=origin):
        zone.add(record)
    return zone


def serialize_records(records: list[ResourceRecord], origin: str | None = None) -> str:
    """Render records as master-file text (absolute owner names)."""
    lines = []
    if origin is not None:
        origin_name = DomainName(origin)
        lines.append(f"$ORIGIN {origin_name}.")
    for record in records:
        lines.append(
            f"{record.name}. {record.ttl} {record.rclass.name} {record.rtype.name} {record.rdata}"
        )
    return "\n".join(lines) + "\n"
