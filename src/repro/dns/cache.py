"""TTL-aware DNS caches.

The same cache structure backs three different actors in this library:

* the **stub cache** on each simulated device (optionally violating TTLs,
  which §5.2 of the paper measures at 22.2% of local-cache connections),
* the **shared cache** inside each recursive resolver platform, and
* the **whole-house cache** simulated in §8 of the paper.

Entries are keyed by ``(qname, qtype)`` (case-folded). Every entry keeps
the absolute expiry time derived from the minimum answer TTL, plus usage
accounting the analysis layer relies on (first-use detection, expired-use
detection). Capacity-bounded caches evict least-recently-used entries.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.dns.name import DomainName
from repro.dns.rr import ResourceRecord, RRType
from repro.errors import DnsError

CacheKey = tuple[str, int]


#: Memo for string-keyed lookups: the hot paths resolve the same bounded
#: hostname universe repeatedly, so each (text, qtype) pair is parsed,
#: validated, and folded exactly once — and, like the interning cache in
#: :mod:`repro.dns.name`, the memo resets past ``_KEY_CACHE_MAX`` so a
#: long-lived driver crossing many scenario universes cannot grow it
#: without bound (it memoizes a pure function; a reset only re-parses).
_KEY_CACHE_MAX = 65536
_KEY_CACHE: dict[tuple[str, int], CacheKey] = {}


def cache_key(qname: DomainName | str, qtype: RRType | int = RRType.A) -> CacheKey:
    """Canonical cache key for a name/type pair."""
    qtype_value = int(qtype)
    if isinstance(qname, str):
        memo = (qname, qtype_value)
        key = _KEY_CACHE.get(memo)
        if key is None:
            key = (DomainName.intern(qname).folded(), qtype_value)
            if len(_KEY_CACHE) >= _KEY_CACHE_MAX:
                _KEY_CACHE.clear()
            _KEY_CACHE[memo] = key
        return key
    return (qname.folded(), qtype_value)


@dataclass(slots=True)
class CacheEntry:
    """One cached RRset plus bookkeeping."""

    key: CacheKey
    records: tuple[ResourceRecord, ...]
    stored_at: float
    ttl: float  # repro-lint: disable=UNIT001 RFC 1035 field name; DNS TTLs are seconds by definition and every DNS library spells it 'ttl'
    uses: int = 0
    last_used: float | None = None
    #: Memo for :meth:`aged_records`: ``(remaining, records)`` of the
    #: last call. The aged RRset depends only on the whole-second
    #: remaining TTL, so bursts of probes within the same second (a
    #: browser's parallel fetches) reuse one materialized tuple.
    aged_cache: "tuple[int, tuple[ResourceRecord, ...]] | None" = None

    @property
    def expires_at(self) -> float:
        """Absolute time at which the entry's TTL runs out."""
        return self.stored_at + self.ttl

    def is_expired(self, now: float) -> bool:
        """True once *now* passes the entry's expiry."""
        return now >= self.expires_at

    def remaining_ttl(self, now: float) -> float:
        """Seconds of TTL left at *now* (negative once expired)."""
        return self.expires_at - now

    def aged_records(self, now: float) -> tuple[ResourceRecord, ...]:
        """Records with TTLs decremented by the entry's age, floored at 0."""
        remaining = max(0, int(self.remaining_ttl(now)))
        cached = self.aged_cache
        if cached is not None and cached[0] == remaining:
            return cached[1]
        records = self.records
        if len(records) == 1:
            # Singleton RRset: reuse the stored tuple outright while the
            # record's own TTL is the binding one.
            rr = records[0]
            aged = records if rr.ttl <= remaining else (rr.with_ttl(remaining),)
        else:
            aged = tuple(
                rr if rr.ttl <= remaining else rr.with_ttl(remaining) for rr in records
            )
        self.aged_cache = (remaining, aged)
        return aged


@dataclass(frozen=True, slots=True)
class CacheLookup:
    """Outcome of a cache probe."""

    hit: bool
    records: tuple[ResourceRecord, ...] = ()
    expired: bool = False
    first_use: bool = False
    entry_age: float = 0.0

    def addresses(self) -> tuple[str, ...]:
        """IP addresses among the returned records."""
        return tuple([rr.address for rr in self.records if rr.is_address()])


#: Shared miss result: frozen, so every miss can return the same object.
_MISS = CacheLookup(hit=False)


@dataclass(slots=True)
class CacheStats:
    """Aggregate counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    expired_hits: int = 0
    insertions: int = 0
    evictions: int = 0
    refreshes: int = 0

    @property
    def lookups(self) -> int:
        """Total number of probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes served from cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class DnsCache:
    """An LRU, TTL-aware DNS cache.

    Parameters
    ----------
    capacity:
        Maximum number of entries, or ``None`` for unbounded.
    overstay:
        Either a constant number of seconds an expired entry may still be
        served (``0`` = strict TTL honoring), or a callable
        ``overstay(key) -> float`` evaluated when the entry is stored.
        This models the real-world TTL violations §5.2 quantifies.
    min_ttl_s / max_ttl_s:
        Clamp stored TTLs, mirroring resolver implementations that floor
        or cap TTLs.
    """

    def __init__(
        self,
        capacity: int | None = None,
        overstay: float | Callable[[CacheKey], float] = 0.0,
        min_ttl_s: float = 0.0,
        max_ttl_s: float | None = None,
    ):
        if capacity is not None and capacity <= 0:
            raise DnsError(f"cache capacity must be positive, got {capacity}")
        if min_ttl_s < 0:
            raise DnsError(f"min_ttl_s must be non-negative, got {min_ttl_s}")
        if max_ttl_s is not None and max_ttl_s < min_ttl_s:
            raise DnsError("max_ttl_s must be >= min_ttl_s")
        self._capacity = capacity
        self._overstay = overstay
        self._min_ttl_s = min_ttl_s
        self._max_ttl_s = max_ttl_s
        self._entries: OrderedDict[CacheKey, CacheEntry] = OrderedDict()
        self._overstays: dict[CacheKey, float] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def entries(self) -> Iterator[CacheEntry]:
        """Iterate over entries in LRU order (least recent first)."""
        return iter(self._entries.values())

    def _overstay_for(self, key: CacheKey) -> float:
        if callable(self._overstay):
            return max(0.0, float(self._overstay(key)))
        return max(0.0, float(self._overstay))

    def put(
        self,
        key: CacheKey,
        records: tuple[ResourceRecord, ...],
        now: float,
        ttl: float | None = None,  # repro-lint: disable=UNIT001 RFC 1035 parameter name; DNS TTLs are seconds by definition and every DNS library spells it 'ttl'
    ) -> CacheEntry:
        """Store *records* under *key* at time *now*.

        ``ttl`` overrides the minimum record TTL when given (the §8
        refresh simulator uses this to apply the max-observed TTL rule).
        """
        if not records:
            raise DnsError("refusing to cache an empty RRset")
        if ttl is not None:
            effective_ttl = float(ttl)
        elif len(records) == 1:
            # Most RRsets in the simulated universe hold one record;
            # skip the generator the min() path would allocate.
            effective_ttl = float(records[0].ttl)
        else:
            effective_ttl = float(min(rr.ttl for rr in records))
        effective_ttl = max(self._min_ttl_s, effective_ttl)
        if self._max_ttl_s is not None:
            effective_ttl = min(self._max_ttl_s, effective_ttl)
        entry = CacheEntry(key, records, now, effective_ttl)
        entries = self._entries
        if key in entries:
            del entries[key]
        entries[key] = entry
        self._overstays[key] = self._overstay_for(key)
        self.stats.insertions += 1
        if self._capacity is not None:
            while len(self._entries) > self._capacity:
                evicted_key, _ = self._entries.popitem(last=False)
                self._overstays.pop(evicted_key, None)
                self.stats.evictions += 1
        return entry

    def get(self, key: CacheKey, now: float) -> CacheLookup:
        """Probe the cache at time *now*, updating usage accounting.

        The expiry arithmetic is inlined (rather than going through
        :meth:`CacheEntry.is_expired` / :attr:`CacheEntry.expires_at`)
        because this is the single hottest call in trace generation.
        """
        entries = self._entries
        stats = self.stats
        entry = entries.get(key)
        if entry is None:
            stats.misses += 1
            return _MISS
        expires_at = entry.stored_at + entry.ttl
        expired = now >= expires_at
        if expired and now >= expires_at + self._overstays.get(key, 0.0):
            # Beyond the tolerated overstay: treat as a miss and drop it.
            del entries[key]
            self._overstays.pop(key, None)
            stats.misses += 1
            return _MISS
        first_use = entry.uses == 0
        entry.uses += 1
        entry.last_used = now
        entries.move_to_end(key)
        stats.hits += 1
        if expired:
            stats.expired_hits += 1
        return CacheLookup(
            True,
            entry.aged_records(now) if not expired else entry.records,
            expired,
            first_use,
            now - entry.stored_at,
        )

    def probe(self, key: CacheKey, now: float) -> tuple[bool, bool]:
        """Probe the cache at *now*, returning only ``(hit, expired)``.

        Behaviourally identical to :meth:`get` — same stats counters,
        LRU movement, usage accounting, and overstay eviction — but
        skips materializing the aged RRset and the :class:`CacheLookup`.
        For callers that only need freshness (the resolver's delegation
        checks probe once per zone hop per resolution).
        """
        entries = self._entries
        stats = self.stats
        entry = entries.get(key)
        if entry is None:
            stats.misses += 1
            return (False, False)
        expires_at = entry.stored_at + entry.ttl
        expired = now >= expires_at
        if expired and now >= expires_at + self._overstays.get(key, 0.0):
            del entries[key]
            self._overstays.pop(key, None)
            stats.misses += 1
            return (False, False)
        entry.uses += 1
        entry.last_used = now
        entries.move_to_end(key)
        stats.hits += 1
        if expired:
            stats.expired_hits += 1
        return (True, expired)

    def peek(self, key: CacheKey) -> CacheEntry | None:
        """Return the entry for *key* without touching usage accounting."""
        return self._entries.get(key)

    def refresh(
        self,
        key: CacheKey,
        records: tuple[ResourceRecord, ...],
        now: float,
        ttl: float | None = None,  # repro-lint: disable=UNIT001 RFC 1035 parameter name; DNS TTLs are seconds by definition and every DNS library spells it 'ttl'
    ) -> CacheEntry:
        """Replace an entry in place, preserving its usage counters.

        Used by the §8 refresh-on-expiry simulator: a refreshed entry is
        not a "new" name, so first-use accounting must survive.
        """
        previous = self._entries.get(key)
        entry = self.put(key, records, now, ttl=ttl)
        if previous is not None:
            entry.uses = previous.uses
            entry.last_used = previous.last_used
        self.stats.refreshes += 1
        # put() counted an insertion; a refresh should not.
        self.stats.insertions -= 1
        return entry

    def purge_expired(self, now: float) -> int:
        """Drop every entry whose TTL (plus overstay) has run out."""
        doomed = [
            key
            for key, entry in self._entries.items()
            if now > entry.expires_at + self._overstays.get(key, 0.0)
        ]
        for key in doomed:
            del self._entries[key]
            self._overstays.pop(key, None)
        return len(doomed)

    def expiring_before(self, deadline: float) -> list[CacheEntry]:
        """Entries whose nominal TTL runs out before *deadline*."""
        return [entry for entry in self._entries.values() if entry.expires_at < deadline]

    def clear(self) -> None:
        """Drop all entries (stats are preserved)."""
        self._entries.clear()
        self._overstays.clear()
