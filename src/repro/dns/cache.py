"""TTL-aware DNS caches.

The same cache structure backs three different actors in this library:

* the **stub cache** on each simulated device (optionally violating TTLs,
  which §5.2 of the paper measures at 22.2% of local-cache connections),
* the **shared cache** inside each recursive resolver platform, and
* the **whole-house cache** simulated in §8 of the paper.

Entries are keyed by ``(qname, qtype)`` (case-folded). Every entry keeps
the absolute expiry time derived from the minimum answer TTL, plus usage
accounting the analysis layer relies on (first-use detection, expired-use
detection).

Capacity-bounded caches evict under one of three pluggable policies
(production resolvers differ here, and it matters under pressure):

* ``"lru"`` — drop the least-recently-used entry (the default, and the
  only behaviour earlier versions had).
* ``"ttl-aware"`` — drop the entry whose (nominal) TTL runs out
  soonest; already-expired entries naturally go first. This mirrors
  resolver caches that prefer reclaiming entries about to die anyway.
* ``"serve-stale"`` — RFC 8767: an expired entry may still be served
  for a bounded *staleness budget* (``stale_ttl_s``, evaluated
  per-entry at store time); eviction reclaims fully-dead entries first,
  then stale ones, then falls back to LRU. Stale serves and
  stale-window expirations are counted separately in
  :class:`CacheStats` so pressure experiments can report them.

**Expiry-boundary convention** (uniform across every accessor): an
entry is servable while ``now < expires_at + window`` and gone once
``now >= expires_at + window``, where ``window`` is the tolerated
overstay (plus the staleness budget for serve-stale caches). ``get``,
``probe``, ``purge_expired``, and ``expiring_before`` all use this
single convention — an entry exactly at the boundary is dropped by a
purge *and* is a miss on the next lookup, never one without the other.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.dns.name import DomainName
from repro.dns.rr import ResourceRecord, RRType
from repro.errors import DnsError

CacheKey = tuple[str, int]

#: The pluggable eviction/staleness policies a capacity-bounded cache
#: can run (see the module docstring for semantics).
EVICTION_POLICIES = ("lru", "ttl-aware", "serve-stale")

#: Default per-entry staleness budget for ``"serve-stale"`` caches when
#: none is configured: RFC 8767 §5 recommends serving stale data for at
#: most one to three days; one day is the common implementation default.
RFC8767_DEFAULT_STALE_TTL_S = 86400.0


#: Memo for string-keyed lookups: the hot paths resolve the same bounded
#: hostname universe repeatedly, so each (text, qtype) pair is parsed,
#: validated, and folded exactly once — and, like the interning cache in
#: :mod:`repro.dns.name`, the memo resets past ``_KEY_CACHE_MAX`` so a
#: long-lived driver crossing many scenario universes cannot grow it
#: without bound (it memoizes a pure function; a reset only re-parses).
_KEY_CACHE_MAX = 65536
_KEY_CACHE: dict[tuple[str, int], CacheKey] = {}


def cache_key(qname: DomainName | str, qtype: RRType | int = RRType.A) -> CacheKey:
    """Canonical cache key for a name/type pair."""
    qtype_value = int(qtype)
    if isinstance(qname, str):
        memo = (qname, qtype_value)
        key = _KEY_CACHE.get(memo)
        if key is None:
            key = (DomainName.intern(qname).folded(), qtype_value)
            if len(_KEY_CACHE) >= _KEY_CACHE_MAX:
                _KEY_CACHE.clear()
            _KEY_CACHE[memo] = key
        return key
    return (qname.folded(), qtype_value)


@dataclass(slots=True)
class CacheEntry:
    """One cached RRset plus bookkeeping."""

    key: CacheKey
    records: tuple[ResourceRecord, ...]
    stored_at: float
    ttl: float  # repro-lint: disable=UNIT001 RFC 1035 field name; DNS TTLs are seconds by definition and every DNS library spells it 'ttl'
    uses: int = 0
    last_used: float | None = None
    #: Memo for :meth:`aged_records`: ``(remaining, records)`` of the
    #: last call. The aged RRset depends only on the whole-second
    #: remaining TTL, so bursts of probes within the same second (a
    #: browser's parallel fetches) reuse one materialized tuple.
    aged_cache: "tuple[int, tuple[ResourceRecord, ...]] | None" = None

    @property
    def expires_at(self) -> float:
        """Absolute time at which the entry's TTL runs out."""
        return self.stored_at + self.ttl

    def is_expired(self, now: float) -> bool:
        """True once *now* passes the entry's expiry."""
        return now >= self.expires_at

    def remaining_ttl(self, now: float) -> float:
        """Seconds of TTL left at *now* (negative once expired)."""
        return self.expires_at - now

    def aged_records(self, now: float) -> tuple[ResourceRecord, ...]:
        """Records with TTLs decremented by the entry's age, floored at 0."""
        remaining = max(0, int(self.remaining_ttl(now)))
        cached = self.aged_cache
        if cached is not None and cached[0] == remaining:
            return cached[1]
        records = self.records
        if len(records) == 1:
            # Singleton RRset: reuse the stored tuple outright while the
            # record's own TTL is the binding one.
            rr = records[0]
            aged = records if rr.ttl <= remaining else (rr.with_ttl(remaining),)
        else:
            aged = tuple(
                rr if rr.ttl <= remaining else rr.with_ttl(remaining) for rr in records
            )
        self.aged_cache = (remaining, aged)
        return aged


@dataclass(frozen=True, slots=True)
class CacheLookup:
    """Outcome of a cache probe.

    ``stale`` marks a serve-stale answer (RFC 8767): the entry's TTL —
    and any tolerated overstay — had run out, but it was still inside
    its staleness budget. ``expired`` is True for both overstay hits and
    stale serves; ``stale`` distinguishes the latter.
    """

    hit: bool
    records: tuple[ResourceRecord, ...] = ()
    expired: bool = False
    first_use: bool = False
    entry_age: float = 0.0
    stale: bool = False

    def addresses(self) -> tuple[str, ...]:
        """IP addresses among the returned records."""
        return tuple([rr.address for rr in self.records if rr.is_address()])


#: Shared miss result: frozen, so every miss can return the same object.
_MISS = CacheLookup(hit=False)


@dataclass(slots=True)
class CacheStats:
    """Aggregate counters for one cache instance.

    All fields are plain additive counters, so per-shard (or
    per-resolver) tallies merge by addition into exactly the
    whole-population tally — the contract the parallel pipeline's merge
    step relies on (see :meth:`merged_with` / :meth:`merge`).
    """

    hits: int = 0
    misses: int = 0
    expired_hits: int = 0
    insertions: int = 0
    evictions: int = 0
    refreshes: int = 0
    #: RFC 8767 serve-stale accounting: answers served past TTL (and
    #: overstay) but within the staleness budget, and entries dropped
    #: because even the staleness budget had lapsed.
    stale_serves: int = 0
    stale_expirations: int = 0

    @property
    def lookups(self) -> int:
        """Total number of probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes served from cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        """The counter tally over both samples."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            expired_hits=self.expired_hits + other.expired_hits,
            insertions=self.insertions + other.insertions,
            evictions=self.evictions + other.evictions,
            refreshes=self.refreshes + other.refreshes,
            stale_serves=self.stale_serves + other.stale_serves,
            stale_expirations=self.stale_expirations + other.stale_expirations,
        )

    @classmethod
    def merge(cls, parts: Sequence["CacheStats"]) -> "CacheStats":
        """Merge many tallies (addition is associative and commutative)."""
        merged = cls()
        for part in parts:
            merged = merged.merged_with(part)
        return merged


class DnsCache:
    """An LRU, TTL-aware DNS cache with pluggable eviction.

    Parameters
    ----------
    capacity:
        Maximum number of entries, or ``None`` for unbounded.
    overstay:
        Either a constant number of seconds an expired entry may still be
        served (``0`` = strict TTL honoring), or a callable
        ``overstay(key) -> float`` evaluated when the entry is stored.
        This models the real-world TTL violations §5.2 quantifies.
    min_ttl_s / max_ttl_s:
        Clamp stored TTLs, mirroring resolver implementations that floor
        or cap TTLs.
    policy:
        One of :data:`EVICTION_POLICIES`; chooses both the
        capacity-eviction victim and (for ``"serve-stale"``) whether
        expired entries stay servable inside a staleness budget. The
        default ``"lru"`` reproduces the historical behaviour exactly.
    stale_ttl_s:
        Per-entry staleness budget for ``"serve-stale"`` caches: a
        constant number of seconds, or ``stale_ttl_s(key) -> float``
        evaluated at store time. ``0`` (the default) selects
        :data:`RFC8767_DEFAULT_STALE_TTL_S`. Ignored by the other two
        policies, which never serve past TTL + overstay.
    """

    def __init__(
        self,
        capacity: int | None = None,
        overstay: float | Callable[[CacheKey], float] = 0.0,
        min_ttl_s: float = 0.0,
        max_ttl_s: float | None = None,
        policy: str = "lru",
        stale_ttl_s: float | Callable[[CacheKey], float] = 0.0,
    ):
        if capacity is not None and capacity <= 0:
            raise DnsError(f"cache capacity must be positive, got {capacity}")
        if min_ttl_s < 0:
            raise DnsError(f"min_ttl_s must be non-negative, got {min_ttl_s}")
        if max_ttl_s is not None and max_ttl_s < min_ttl_s:
            raise DnsError("max_ttl_s must be >= min_ttl_s")
        if policy not in EVICTION_POLICIES:
            raise DnsError(
                f"unknown cache eviction policy {policy!r}; expected one of {EVICTION_POLICIES}"
            )
        self._capacity = capacity
        self._overstay = overstay
        self._min_ttl_s = min_ttl_s
        self._max_ttl_s = max_ttl_s
        self._policy = policy
        self._serves_stale = policy == "serve-stale"
        if self._serves_stale and not callable(stale_ttl_s) and float(stale_ttl_s) <= 0.0:
            stale_ttl_s = RFC8767_DEFAULT_STALE_TTL_S
        self._stale_ttl_s = stale_ttl_s
        self._entries: OrderedDict[CacheKey, CacheEntry] = OrderedDict()
        self._overstays: dict[CacheKey, float] = {}
        #: Staleness budgets, evaluated at store time like overstays.
        #: Always empty unless the policy is ``"serve-stale"``, which is
        #: what keeps the hot lookup path free on the default policies.
        self._stale_budgets: dict[CacheKey, float] = {}
        self.stats = CacheStats()

    @property
    def policy(self) -> str:
        """The configured eviction policy (see :data:`EVICTION_POLICIES`)."""
        return self._policy

    @property
    def serves_stale(self) -> bool:
        """True when expired entries may be served inside a stale budget."""
        return self._serves_stale

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def entries(self) -> Iterator[CacheEntry]:
        """Iterate over entries in LRU order (least recent first)."""
        return iter(self._entries.values())

    def _overstay_for(self, key: CacheKey) -> float:
        if callable(self._overstay):
            return max(0.0, float(self._overstay(key)))
        return max(0.0, float(self._overstay))

    def _stale_for(self, key: CacheKey) -> float:
        if callable(self._stale_ttl_s):
            return max(0.0, float(self._stale_ttl_s(key)))
        return max(0.0, float(self._stale_ttl_s))

    def _drop(self, key: CacheKey) -> None:
        """Remove *key* and its per-entry windows (no stats changes)."""
        del self._entries[key]
        self._overstays.pop(key, None)
        if self._stale_budgets:
            self._stale_budgets.pop(key, None)

    def _evict_one(self, now: float) -> None:
        """Evict one entry under capacity pressure, per the policy.

        * ``"lru"`` pops the least-recently-used entry (O(1)).
        * ``"ttl-aware"`` scans for the entry whose nominal TTL runs out
          soonest — already-expired entries naturally sort first (O(n),
          acceptable at simulation scale and only paid when over
          capacity).
        * ``"serve-stale"`` reclaims fully-dead entries (past even the
          staleness budget) first, then the least-recently-used stale
          entry, and only then falls back to plain LRU — RFC 8767's
          "stale data is better than no data" applied to eviction.
        """
        entries = self._entries
        if self._policy == "lru":
            victim, _ = entries.popitem(last=False)
        elif self._policy == "ttl-aware":
            victim = min(entries.values(), key=lambda e: e.expires_at).key
            del entries[victim]
        else:
            victim = None
            stale_fallback = None
            for key, entry in entries.items():  # LRU order, least recent first
                servable_until = entry.expires_at + self._overstays.get(key, 0.0)
                if now >= servable_until + self._stale_budgets.get(key, 0.0):
                    victim = key
                    break
                if stale_fallback is None and now >= servable_until:
                    stale_fallback = key
            if victim is None:
                victim = stale_fallback
            if victim is None:
                victim, _ = entries.popitem(last=False)
            else:
                del entries[victim]
        self._overstays.pop(victim, None)
        self._stale_budgets.pop(victim, None)
        self.stats.evictions += 1

    def put(
        self,
        key: CacheKey,
        records: tuple[ResourceRecord, ...],
        now: float,
        ttl: float | None = None,  # repro-lint: disable=UNIT001 RFC 1035 parameter name; DNS TTLs are seconds by definition and every DNS library spells it 'ttl'
    ) -> CacheEntry:
        """Store *records* under *key* at time *now*.

        ``ttl`` overrides the minimum record TTL when given (the §8
        refresh simulator uses this to apply the max-observed TTL rule).
        """
        if not records:
            raise DnsError("refusing to cache an empty RRset")
        if ttl is not None:
            effective_ttl = float(ttl)
        elif len(records) == 1:
            # Most RRsets in the simulated universe hold one record;
            # skip the generator the min() path would allocate.
            effective_ttl = float(records[0].ttl)
        else:
            effective_ttl = float(min(rr.ttl for rr in records))
        effective_ttl = max(self._min_ttl_s, effective_ttl)
        if self._max_ttl_s is not None:
            effective_ttl = min(self._max_ttl_s, effective_ttl)
        entry = CacheEntry(key, records, now, effective_ttl)
        entries = self._entries
        if key in entries:
            del entries[key]
        entries[key] = entry
        self._overstays[key] = self._overstay_for(key)
        if self._serves_stale:
            self._stale_budgets[key] = self._stale_for(key)
        self.stats.insertions += 1
        if self._capacity is not None:
            while len(entries) > self._capacity:
                self._evict_one(now)
        return entry

    def get(self, key: CacheKey, now: float) -> CacheLookup:
        """Probe the cache at time *now*, updating usage accounting.

        The expiry arithmetic is inlined (rather than going through
        :meth:`CacheEntry.is_expired` / :attr:`CacheEntry.expires_at`)
        because this is the single hottest call in trace generation.
        """
        entries = self._entries
        stats = self.stats
        entry = entries.get(key)
        if entry is None:
            stats.misses += 1
            return _MISS
        expires_at = entry.stored_at + entry.ttl
        expired = now >= expires_at
        stale = False
        if expired:
            servable_until = expires_at + self._overstays.get(key, 0.0)
            if now >= servable_until:
                # Beyond the tolerated overstay: servable only inside a
                # staleness budget (RFC 8767); a miss-and-drop otherwise.
                stale_budget = self._stale_budgets.get(key, 0.0)
                if stale_budget > 0.0 and now < servable_until + stale_budget:
                    stale = True
                else:
                    self._drop(key)
                    if stale_budget > 0.0:
                        stats.stale_expirations += 1
                    stats.misses += 1
                    return _MISS
        first_use = entry.uses == 0
        entry.uses += 1
        entry.last_used = now
        entries.move_to_end(key)
        stats.hits += 1
        if expired:
            stats.expired_hits += 1
            if stale:
                stats.stale_serves += 1
        return CacheLookup(
            True,
            entry.aged_records(now) if not expired else entry.records,
            expired,
            first_use,
            now - entry.stored_at,
            stale,
        )

    def probe(self, key: CacheKey, now: float) -> tuple[bool, bool]:
        """Probe the cache at *now*, returning only ``(hit, expired)``.

        Behaviourally identical to :meth:`get` — same stats counters,
        LRU movement, usage accounting, and overstay eviction — but
        skips materializing the aged RRset and the :class:`CacheLookup`.
        For callers that only need freshness (the resolver's delegation
        checks probe once per zone hop per resolution).
        """
        entries = self._entries
        stats = self.stats
        entry = entries.get(key)
        if entry is None:
            stats.misses += 1
            return (False, False)
        expires_at = entry.stored_at + entry.ttl
        expired = now >= expires_at
        stale = False
        if expired:
            servable_until = expires_at + self._overstays.get(key, 0.0)
            if now >= servable_until:
                stale_budget = self._stale_budgets.get(key, 0.0)
                if stale_budget > 0.0 and now < servable_until + stale_budget:
                    stale = True
                else:
                    self._drop(key)
                    if stale_budget > 0.0:
                        stats.stale_expirations += 1
                    stats.misses += 1
                    return (False, False)
        entry.uses += 1
        entry.last_used = now
        entries.move_to_end(key)
        stats.hits += 1
        if expired:
            stats.expired_hits += 1
            if stale:
                stats.stale_serves += 1
        return (True, expired)

    def peek(self, key: CacheKey) -> CacheEntry | None:
        """Return the entry for *key* without touching usage accounting.

        Applies **no** expiry notion at all: callers get the raw entry
        even when it is past every window (they inspect
        ``entry.expires_at`` themselves).
        """
        return self._entries.get(key)

    def refresh(
        self,
        key: CacheKey,
        records: tuple[ResourceRecord, ...],
        now: float,
        ttl: float | None = None,  # repro-lint: disable=UNIT001 RFC 1035 parameter name; DNS TTLs are seconds by definition and every DNS library spells it 'ttl'
    ) -> CacheEntry:
        """Replace an entry in place, preserving its usage counters.

        Used by the §8 refresh-on-expiry simulator: a refreshed entry is
        not a "new" name, so first-use accounting must survive.
        """
        previous = self._entries.get(key)
        entry = self.put(key, records, now, ttl=ttl)
        if previous is not None:
            entry.uses = previous.uses
            entry.last_used = previous.last_used
        self.stats.refreshes += 1
        # put() counted an insertion; a refresh should not.
        self.stats.insertions -= 1
        return entry

    def _servable_window(self, key: CacheKey) -> float:
        """Seconds past nominal expiry the entry stays servable.

        The tolerated overstay plus, for serve-stale caches, the
        per-entry staleness budget — i.e. exactly the window the lookup
        path honours before dropping the entry.
        """
        return self._overstays.get(key, 0.0) + self._stale_budgets.get(key, 0.0)

    def purge_expired(self, now: float) -> int:
        """Drop every entry that a lookup at *now* would no longer serve.

        Uses the module-wide **overstay-extended** (and, for serve-stale
        caches, stale-extended) expiry notion with the uniform ``now >=
        expires_at + window`` boundary — an entry exactly at the
        boundary is purged here *and* would have been a miss on the next
        :meth:`get`, never one without the other.
        """
        doomed = [
            key
            for key, entry in self._entries.items()
            if now >= entry.expires_at + self._servable_window(key)
        ]
        stats = self.stats
        for key in doomed:
            if self._stale_budgets.get(key, 0.0) > 0.0:
                stats.stale_expirations += 1
            self._drop(key)
        return len(doomed)

    def expiring_before(self, deadline: float, nominal: bool = False) -> list[CacheEntry]:
        """Entries a lookup at *deadline* would no longer serve.

        By default this uses the same **overstay/stale-extended** expiry
        notion as :meth:`get` and :meth:`purge_expired` (an entry is
        included once ``expires_at + window <= deadline``), so
        refresh-on-expiry simulations never treat a still-servable entry
        as gone. Pass ``nominal=True`` for the raw-TTL notion
        (``expires_at < deadline``, ignoring overstay and staleness),
        which is what refresh schedulers planning *ahead of* expiry
        want.
        """
        if nominal:
            return [entry for entry in self._entries.values() if entry.expires_at < deadline]
        return [
            entry
            for key, entry in self._entries.items()
            if entry.expires_at + self._servable_window(key) <= deadline
        ]

    def clear(self) -> None:
        """Drop all entries (stats are preserved)."""
        self._entries.clear()
        self._overstays.clear()
        self._stale_budgets.clear()
