"""DNS resource records: types, classes, and typed RDATA.

The model covers the record types that appear in residential DNS traffic
(the dataset the paper analyses): address records (A/AAAA), aliases
(CNAME), delegation (NS), reverse mapping (PTR), mail (MX), text (TXT),
zone authority (SOA), service location (SRV), and EDNS0 (OPT).

Each RDATA kind is a small frozen dataclass with a ``to_wire`` /
``from_wire`` pair used by :mod:`repro.dns.wire`.
"""

from __future__ import annotations

import enum
import ipaddress
import struct
from dataclasses import dataclass

from repro.dns.name import DomainName
from repro.errors import WireFormatError


class RRType(enum.IntEnum):
    """Resource record TYPE values (RFC 1035 §3.2.2 and successors)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    OPT = 41
    HTTPS = 65
    ANY = 255

    @classmethod
    def parse(cls, value: "int | str | RRType") -> "RRType":
        """Accept an int value, a mnemonic string, or an RRType."""
        if isinstance(value, RRType):
            return value
        if isinstance(value, int):
            return cls(value)
        try:
            return cls[value.upper()]
        except KeyError as exc:
            raise WireFormatError(f"unknown RR type {value!r}") from exc


class RRClass(enum.IntEnum):
    """Resource record CLASS values (RFC 1035 §3.2.4)."""

    IN = 1
    CH = 3
    HS = 4
    NONE = 254
    ANY = 255


_ADDRESS_TYPES = frozenset({RRType.A, RRType.AAAA})


@dataclass(frozen=True, slots=True)
class ARecordData:
    """RDATA for an A record: a single IPv4 address."""

    address: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "address", str(ipaddress.IPv4Address(self.address)))

    def to_wire(self) -> bytes:
        """The 4-octet RDATA encoding of the address."""
        return ipaddress.IPv4Address(self.address).packed

    @classmethod
    def from_wire(cls, data: bytes) -> "ARecordData":
        """Decode 4 octets of A RDATA."""
        if len(data) != 4:
            raise WireFormatError(f"A RDATA must be 4 octets, got {len(data)}")
        return cls(str(ipaddress.IPv4Address(data)))

    def __str__(self) -> str:
        return self.address


@dataclass(frozen=True, slots=True)
class AAAARecordData:
    """RDATA for an AAAA record: a single IPv6 address."""

    address: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "address", str(ipaddress.IPv6Address(self.address)))

    def to_wire(self) -> bytes:
        """The 16-octet RDATA encoding of the address."""
        return ipaddress.IPv6Address(self.address).packed

    @classmethod
    def from_wire(cls, data: bytes) -> "AAAARecordData":
        """Decode 16 octets of AAAA RDATA."""
        if len(data) != 16:
            raise WireFormatError(f"AAAA RDATA must be 16 octets, got {len(data)}")
        return cls(str(ipaddress.IPv6Address(data)))

    def __str__(self) -> str:
        return self.address


@dataclass(frozen=True, slots=True)
class NameRecordData:
    """RDATA holding a single domain name (CNAME, NS, PTR)."""

    target: DomainName

    def __str__(self) -> str:
        return str(self.target)


@dataclass(frozen=True, slots=True)
class MXRecordData:
    """RDATA for an MX record: preference plus exchange name."""

    preference: int
    exchange: DomainName

    def __post_init__(self) -> None:
        if not 0 <= self.preference <= 0xFFFF:
            raise WireFormatError(f"MX preference out of range: {self.preference}")

    def __str__(self) -> str:
        return f"{self.preference} {self.exchange}"


@dataclass(frozen=True, slots=True)
class TXTRecordData:
    """RDATA for a TXT record: one or more character strings."""

    strings: tuple[bytes, ...]

    def __post_init__(self) -> None:
        for chunk in self.strings:
            if len(chunk) > 255:
                raise WireFormatError("TXT character-string exceeds 255 octets")

    def to_wire(self) -> bytes:
        """The length-prefixed character-string RDATA encoding."""
        return b"".join(bytes([len(chunk)]) + chunk for chunk in self.strings)

    @classmethod
    def from_wire(cls, data: bytes) -> "TXTRecordData":
        """Decode a sequence of length-prefixed character-strings."""
        strings: list[bytes] = []
        offset = 0
        while offset < len(data):
            length = data[offset]
            offset += 1
            if offset + length > len(data):
                raise WireFormatError("TXT character-string runs past RDATA")
            strings.append(data[offset:offset + length])
            offset += length
        return cls(tuple(strings))

    @classmethod
    def from_text(cls, *texts: str) -> "TXTRecordData":
        """A TXT RDATA whose character-strings are UTF-8 encodings of *texts*."""
        return cls(tuple(text.encode("utf-8") for text in texts))

    def __str__(self) -> str:
        return " ".join(repr(chunk.decode("utf-8", "replace")) for chunk in self.strings)


@dataclass(frozen=True, slots=True)
class SOARecordData:
    """RDATA for an SOA record (RFC 1035 §3.3.13)."""

    mname: DomainName
    rname: DomainName
    serial: int
    refresh: int
    retry: int
    expire: int
    minimum: int

    def __str__(self) -> str:
        return (
            f"{self.mname} {self.rname} {self.serial} "
            f"{self.refresh} {self.retry} {self.expire} {self.minimum}"
        )


@dataclass(frozen=True, slots=True)
class SRVRecordData:
    """RDATA for an SRV record (RFC 2782)."""

    priority: int
    weight: int
    port: int
    target: DomainName

    def __post_init__(self) -> None:
        for label, value in (("priority", self.priority), ("weight", self.weight), ("port", self.port)):
            if not 0 <= value <= 0xFFFF:
                raise WireFormatError(f"SRV {label} out of range: {value}")

    def __str__(self) -> str:
        return f"{self.priority} {self.weight} {self.port} {self.target}"


@dataclass(frozen=True, slots=True)
class OpaqueRecordData:
    """RDATA of a type this library does not interpret, kept verbatim."""

    data: bytes

    def to_wire(self) -> bytes:
        """The RDATA exactly as captured."""
        return self.data

    def __str__(self) -> str:
        return self.data.hex()


RData = (
    ARecordData
    | AAAARecordData
    | NameRecordData
    | MXRecordData
    | TXTRecordData
    | SOARecordData
    | SRVRecordData
    | OpaqueRecordData
)

MAX_TTL = 0x7FFFFFFF


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """A single DNS resource record.

    ``ttl`` is the remaining-lifetime value carried in the response, in
    seconds. Records are immutable; use :meth:`with_ttl` to derive a copy
    with an adjusted TTL (e.g. when a cache serves a partially-aged entry).
    """

    name: DomainName
    rtype: RRType
    rdata: RData
    ttl: int = 300
    rclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        if not 0 <= self.ttl <= MAX_TTL:
            raise WireFormatError(f"TTL out of range: {self.ttl}")

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        """A copy of this record carrying *ttl* seconds of lifetime.

        The record is frozen, so callers that can see the TTL is
        unchanged may share ``self`` instead of calling this (the cache
        does exactly that on its aged-RRset fast path).
        """
        return ResourceRecord(self.name, self.rtype, self.rdata, ttl, self.rclass)

    def is_address(self) -> bool:
        """True for A and AAAA records."""
        return self.rtype in _ADDRESS_TYPES

    @property
    def address(self) -> str:
        """The IP address carried by an A/AAAA record."""
        if not isinstance(self.rdata, (ARecordData, AAAARecordData)):
            raise TypeError(f"{self.rtype.name} record carries no address")
        return self.rdata.address

    def __str__(self) -> str:
        return f"{self.name} {self.ttl} {self.rclass.name} {self.rtype.name} {self.rdata}"


def a_record(name: DomainName | str, address: str, ttl: int = 300) -> ResourceRecord:
    """Convenience constructor for an IN A record."""
    return ResourceRecord(DomainName(name), RRType.A, ARecordData(address), ttl)


def aaaa_record(name: DomainName | str, address: str, ttl: int = 300) -> ResourceRecord:
    """Convenience constructor for an IN AAAA record."""
    return ResourceRecord(DomainName(name), RRType.AAAA, AAAARecordData(address), ttl)


def cname_record(name: DomainName | str, target: DomainName | str, ttl: int = 300) -> ResourceRecord:
    """Convenience constructor for an IN CNAME record."""
    return ResourceRecord(DomainName(name), RRType.CNAME, NameRecordData(DomainName(target)), ttl)


def ns_record(zone: DomainName | str, nameserver: DomainName | str, ttl: int = 172800) -> ResourceRecord:
    """Convenience constructor for an IN NS record."""
    return ResourceRecord(DomainName(zone), RRType.NS, NameRecordData(DomainName(nameserver)), ttl)


def struct_pack_u16(value: int) -> bytes:
    """Pack an unsigned 16-bit integer, validating range."""
    if not 0 <= value <= 0xFFFF:
        raise WireFormatError(f"u16 out of range: {value}")
    return struct.pack("!H", value)
