"""Authoritative zone data and servers.

The synthetic Internet behind the workload generator is a tree of
:class:`Zone` objects — a root zone delegating to TLD zones delegating to
second-level zones — served by :class:`AuthoritativeServer` instances.
Recursive resolvers (:mod:`repro.dns.resolver`) walk this tree exactly
like real resolvers walk the DNS, which is what gives the `R`-class
lookups in the reproduction their multi-hop latency structure.

Zones support *dynamic* RRsets: a provider callable invoked per query
with the identity of the querying resolver. This models CDN authoritative
servers that pick an edge cluster based on the resolver's location
(the mechanism behind §7's throughput-vs-resolver result).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.dns.message import Message, Question, Rcode, make_response
from repro.dns.name import DomainName, ROOT
from repro.dns.rr import ResourceRecord, RRType, a_record, ns_record
from repro.errors import ZoneError

DynamicProvider = Callable[[str], tuple[ResourceRecord, ...]]
"""Signature for dynamic RRset providers: resolver identity -> records."""


class Zone:
    """One authoritative zone: an origin plus its RRsets and delegations."""

    def __init__(self, origin: DomainName | str):
        self.origin = DomainName(origin)
        self._static: dict[tuple[str, int], list[ResourceRecord]] = {}
        self._dynamic: dict[tuple[str, int], DynamicProvider] = {}
        self._delegations: dict[str, list[ResourceRecord]] = {}
        # Query-time memos, invalidated on mutation. Resolvers ask the
        # same bounded set of names over and over; walking a name's
        # ancestor chain (allocating a DomainName per level) on every
        # query dominated generation cost before these caches.
        self._delegation_cache: dict[str, tuple[DomainName, list[ResourceRecord]] | None] = {}
        self._names_cache: set[str] | None = None
        self._suffix_cache: set[str] | None = None

    def __repr__(self) -> str:
        return f"Zone({str(self.origin)!r}, rrsets={len(self._static) + len(self._dynamic)})"

    def _key(self, name: DomainName, rtype: RRType) -> tuple[str, int]:
        return (name.folded(), int(rtype))

    def add(self, record: ResourceRecord) -> None:
        """Add a static record; it must live at or below the origin."""
        if not record.name.is_subdomain_of(self.origin):
            raise ZoneError(f"{record.name} is outside zone {self.origin}")
        self._static.setdefault(self._key(record.name, record.rtype), []).append(record)
        self._names_cache = None
        self._suffix_cache = None

    def add_many(self, records: Iterable[ResourceRecord]) -> None:
        """Add several static records."""
        for record in records:
            self.add(record)

    def add_dynamic(self, name: DomainName | str, rtype: RRType, provider: DynamicProvider) -> None:
        """Register a per-query RRset provider (e.g. CDN edge mapping)."""
        owner = DomainName(name)
        if not owner.is_subdomain_of(self.origin):
            raise ZoneError(f"{owner} is outside zone {self.origin}")
        self._dynamic[self._key(owner, rtype)] = provider
        self._names_cache = None
        self._suffix_cache = None

    def delegate(self, child_zone: DomainName | str, ns_records: Iterable[ResourceRecord]) -> None:
        """Record a delegation of *child_zone* to the given NS records."""
        child = DomainName(child_zone)
        if not child.is_subdomain_of(self.origin) or child == self.origin:
            raise ZoneError(f"{child} is not a proper child of {self.origin}")
        records = list(ns_records)
        if not records or any(rr.rtype != RRType.NS for rr in records):
            raise ZoneError("delegation requires at least one NS record")
        self._delegations[child.folded()] = records
        self._delegation_cache.clear()

    def find_delegation(self, qname: DomainName) -> tuple[DomainName, list[ResourceRecord]] | None:
        """Deepest delegation covering *qname*, if any."""
        memo = qname.folded()
        try:
            return self._delegation_cache[memo]
        except KeyError:
            pass
        best: tuple[DomainName, list[ResourceRecord]] | None = None
        probe = qname
        chain = [probe, *probe.ancestors()]
        for candidate in chain:
            if candidate == self.origin:
                break
            records = self._delegations.get(candidate.folded())
            if records is not None:
                best = (candidate, records)
                break
        self._delegation_cache[memo] = best
        return best

    def lookup(self, qname: DomainName, rtype: RRType, requester: str = "") -> tuple[ResourceRecord, ...]:
        """All records for *qname*/*rtype*, static plus dynamic."""
        key = self._key(qname, rtype)
        records = tuple(self._static.get(key, ()))
        provider = self._dynamic.get(key)
        if provider is not None:
            records += tuple(provider(requester))
        return records

    def names(self) -> set[str]:
        """Folded owner names of every static and dynamic RRset."""
        if self._names_cache is None:
            owners = {name for name, _ in self._static}
            owners |= {name for name, _ in self._dynamic}
            self._names_cache = owners
        return self._names_cache

    def covers_name(self, folded: str) -> bool:
        """Does *folded* exist in the zone, as an owner or empty non-terminal?

        Equivalent to scanning every owner for an exact match or a
        ``owner.endswith("." + folded)`` ancestor relation, but answered
        from a cached set of every owner suffix so each query costs one
        hash probe instead of an O(zone) string scan.
        """
        if self._suffix_cache is None:
            suffixes: set[str] = set()
            for owner in self.names():
                suffixes.add(owner)
                while "." in owner:
                    owner = owner.split(".", 1)[1]
                    suffixes.add(owner)
            self._suffix_cache = suffixes
        return folded in self._suffix_cache


@dataclass(frozen=True, slots=True)
class Referral:
    """A downward referral: the child zone cut and its nameservers."""

    zone: DomainName
    ns_records: tuple[ResourceRecord, ...]


@dataclass(frozen=True, slots=True)
class AuthoritativeAnswer:
    """Result of asking an authoritative server one question."""

    rcode: Rcode
    answers: tuple[ResourceRecord, ...] = ()
    referral: Referral | None = None

    @property
    def is_referral(self) -> bool:
        """Is this answer a delegation to another zone's servers?"""
        return self.referral is not None


class AuthoritativeServer:
    """An authoritative nameserver hosting one or more zones."""

    def __init__(self, name: str, zones: Iterable[Zone] = ()):
        self.name = name
        self._zones: dict[str, Zone] = {}
        self._zone_for_cache: dict[str, Zone | None] = {}
        for zone in zones:
            self.host(zone)

    def host(self, zone: Zone) -> None:
        """Serve *zone* from this server."""
        self._zones[zone.origin.folded()] = zone
        self._zone_for_cache.clear()

    def zone_for(self, qname: DomainName) -> Zone | None:
        """The most specific hosted zone enclosing *qname*."""
        memo = qname.folded()
        try:
            return self._zone_for_cache[memo]
        except KeyError:
            pass
        best: Zone | None = None
        for candidate in (qname, *qname.ancestors()):
            zone = self._zones.get(candidate.folded())
            if zone is not None:
                best = zone
                break
        self._zone_for_cache[memo] = best
        return best

    def query(self, question: Question, requester: str = "") -> AuthoritativeAnswer:
        """Answer one question: data, referral, or NXDOMAIN/REFUSED."""
        zone = self.zone_for(question.qname)
        if zone is None:
            return AuthoritativeAnswer(rcode=Rcode.REFUSED)
        delegation = zone.find_delegation(question.qname)
        if delegation is not None:
            child, ns_records = delegation
            return AuthoritativeAnswer(
                rcode=Rcode.NOERROR,
                referral=Referral(zone=child, ns_records=tuple(ns_records)),
            )
        records = zone.lookup(question.qname, question.qtype, requester)
        if records:
            return AuthoritativeAnswer(rcode=Rcode.NOERROR, answers=records)
        # Follow in-zone CNAMEs so the answer section carries the chain.
        cnames = zone.lookup(question.qname, RRType.CNAME, requester)
        if cnames:
            chain = list(cnames)
            target = chain[0].rdata.target  # type: ignore[union-attr]
            if target.is_subdomain_of(zone.origin):
                chain.extend(zone.lookup(target, question.qtype, requester))
            return AuthoritativeAnswer(rcode=Rcode.NOERROR, answers=tuple(chain))
        if zone.covers_name(question.qname.folded()):
            return AuthoritativeAnswer(rcode=Rcode.NOERROR, answers=())
        return AuthoritativeAnswer(rcode=Rcode.NXDOMAIN)

    def respond(self, query: Message, requester: str = "") -> Message:
        """Build a full response :class:`Message` for *query*."""
        answer = self.query(query.question, requester)
        authorities: tuple[ResourceRecord, ...] = ()
        if answer.referral is not None:
            authorities = answer.referral.ns_records
        return make_response(
            query,
            answers=answer.answers,
            rcode=answer.rcode,
            authoritative=answer.referral is None and answer.rcode != Rcode.REFUSED,
            recursion_available=False,
            authorities=authorities,
        )


class DnsHierarchy:
    """A complete root-to-leaf authoritative tree.

    Builds and owns the root zone, TLD zones, and one zone per registered
    second-level domain, wiring delegations automatically. Recursive
    resolvers resolve against it via :meth:`server_for_zone`.
    """

    def __init__(self) -> None:
        self.root_zone = Zone(ROOT)
        self.root_server = AuthoritativeServer("a.root-servers.example", [self.root_zone])
        self._tld_zones: dict[str, Zone] = {}
        self._tld_servers: dict[str, AuthoritativeServer] = {}
        self._leaf_zones: dict[str, Zone] = {}
        self._leaf_servers: dict[str, AuthoritativeServer] = {}
        # qname -> resolution path memo, invalidated whenever a zone (and
        # therefore a server) is added. Callers must not mutate the list.
        self._path_cache: dict[str, list[AuthoritativeServer]] = {}

    def ensure_tld(self, tld: str) -> Zone:
        """Create (or fetch) the zone for *tld* and delegate from the root."""
        folded = DomainName(tld).folded()
        zone = self._tld_zones.get(folded)
        if zone is None:
            zone = Zone(folded)
            server = AuthoritativeServer(f"ns.{folded}-registry.example", [zone])
            self._tld_zones[folded] = zone
            self._tld_servers[folded] = server
            self.root_zone.delegate(folded, [ns_record(folded, f"ns.{folded}-registry.example")])
            self._path_cache.clear()
        return zone

    def ensure_leaf_zone(self, origin: DomainName | str) -> Zone:
        """Create (or fetch) an authoritative zone for a 2LD like ``cnn.com``."""
        origin_name = DomainName(origin)
        if len(origin_name) < 2:
            raise ZoneError(f"leaf zones must be at least second-level: {origin_name}")
        folded = origin_name.folded()
        zone = self._leaf_zones.get(folded)
        if zone is None:
            tld_zone = self.ensure_tld(str(origin_name.labels[-1]))
            zone = Zone(origin_name)
            server = AuthoritativeServer(f"ns1.{folded}", [zone])
            self._leaf_zones[folded] = zone
            self._leaf_servers[folded] = server
            tld_zone.delegate(origin_name, [ns_record(origin_name, f"ns1.{folded}")])
            self._path_cache.clear()
        return zone

    def zone_origin_for(self, qname: DomainName) -> DomainName:
        """Origin of the leaf zone that would hold *qname*."""
        if len(qname) < 2:
            raise ZoneError(f"no leaf zone can hold {qname}")
        return DomainName.from_labels(qname.labels[-2:])

    def add_address(self, hostname: DomainName | str, address: str, ttl: int = 300) -> ResourceRecord:
        """Register a static A record, creating zones as needed."""
        name = DomainName(hostname)
        zone = self.ensure_leaf_zone(self.zone_origin_for(name))
        record = a_record(name, address, ttl)
        zone.add(record)
        return record

    def add_dynamic_address(self, hostname: DomainName | str, provider: DynamicProvider) -> None:
        """Register a per-resolver dynamic A RRset (CDN-style)."""
        name = DomainName(hostname)
        zone = self.ensure_leaf_zone(self.zone_origin_for(name))
        zone.add_dynamic(name, RRType.A, provider)

    def server_for_zone(self, origin: DomainName) -> AuthoritativeServer:
        """The authoritative server for a zone origin at any level."""
        folded = origin.folded()
        if folded == ".":
            return self.root_server
        server = self._leaf_servers.get(folded) or self._tld_servers.get(folded)
        if server is None:
            raise ZoneError(f"no server hosts zone {origin}")
        return server

    def resolution_path(self, qname: DomainName) -> list[AuthoritativeServer]:
        """Servers a cold resolver must visit to answer *qname*: root, TLD, leaf.

        The returned list is a shared memo entry — treat it as read-only.
        """
        memo = qname.folded()
        cached = self._path_cache.get(memo)
        if cached is not None:
            return cached
        leaf_origin = self.zone_origin_for(qname)
        path = [self.root_server]
        tld = DomainName.from_labels(qname.labels[-1:])
        if tld.folded() in self._tld_servers:
            path.append(self._tld_servers[tld.folded()])
        if leaf_origin.folded() in self._leaf_servers:
            path.append(self._leaf_servers[leaf_origin.folded()])
        self._path_cache[memo] = path
        return path
