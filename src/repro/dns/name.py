"""Domain name handling per RFC 1035.

A :class:`DomainName` is an immutable sequence of labels. Names are
case-insensitive for comparison and hashing (RFC 4343) but preserve the
case they were created with for display.

Limits enforced (RFC 1035 §2.3.4):

* each label is 1..63 octets,
* the full name is at most 255 octets in wire form (including the length
  octet of every label and the terminating root octet).
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator

from repro.errors import NameError_

MAX_LABEL_LENGTH = 63
MAX_NAME_WIRE_LENGTH = 255

_ALLOWED_LABEL_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyz" "ABCDEFGHIJKLMNOPQRSTUVWXYZ" "0123456789" "-_"
)


def _validate_label(label: str) -> None:
    if not label:
        raise NameError_("empty label")
    if len(label.encode("ascii", "strict")) > MAX_LABEL_LENGTH:
        raise NameError_(f"label exceeds {MAX_LABEL_LENGTH} octets: {label!r}")
    bad = set(label) - _ALLOWED_LABEL_CHARS
    if bad:
        raise NameError_(f"label {label!r} contains invalid characters: {sorted(bad)!r}")


@total_ordering
class DomainName:
    """An immutable, validated DNS domain name.

    Instances can be built from a dotted string (``DomainName("www.cnn.com")``)
    or a label sequence (``DomainName.from_labels(["www", "cnn", "com"])``).
    The root name is spelled ``DomainName(".")`` or :data:`ROOT`.
    """

    __slots__ = ("_labels", "_folded", "_folded_str", "_hash")

    def __init__(self, text: str | "DomainName"):
        if isinstance(text, DomainName):
            self._labels: tuple[str, ...] = text._labels
            self._folded: tuple[str, ...] = text._folded
            return
        if not isinstance(text, str):
            raise NameError_(f"expected str or DomainName, got {type(text).__name__}")
        stripped = text.rstrip(".")
        if stripped == "":
            labels: tuple[str, ...] = ()
        else:
            labels = tuple(stripped.split("."))
            for label in labels:
                try:
                    _validate_label(label)
                except UnicodeEncodeError as exc:
                    raise NameError_(f"non-ASCII label in {text!r}") from exc
        self._labels = labels
        self._folded = tuple(label.lower() for label in labels)
        self._check_wire_length()

    @classmethod
    def from_labels(cls, labels: Iterable[str]) -> "DomainName":
        """Build a name from an iterable of labels, most-specific first."""
        name = cls.__new__(cls)
        label_tuple = tuple(labels)
        for label in label_tuple:
            _validate_label(label)
        name._labels = label_tuple
        name._folded = tuple(label.lower() for label in label_tuple)
        name._check_wire_length()
        return name

    @classmethod
    def intern(cls, text: "str | DomainName") -> "DomainName":
        """A shared, parse-once instance for *text*.

        Hot paths resolve the same bounded universe of hostnames over and
        over; interning turns each repeat parse (label split, validation,
        wire-length check) into one dict probe. Interned instances are
        immutable like any other :class:`DomainName`, so sharing them is
        observationally identical to constructing fresh ones.
        """
        if isinstance(text, DomainName):
            return text
        cached = _INTERNED.get(text)
        if cached is None:
            cached = cls(text)
            if len(_INTERNED) >= _INTERNED_MAX:
                _INTERNED.clear()
            _INTERNED[text] = cached
        return cached

    def _check_wire_length(self) -> None:
        if self.wire_length() > MAX_NAME_WIRE_LENGTH:
            raise NameError_(f"name exceeds {MAX_NAME_WIRE_LENGTH} octets: {self}")

    # -- basic protocol -------------------------------------------------

    @property
    def labels(self) -> tuple[str, ...]:
        """The labels of this name, most-specific first (root excluded)."""
        return self._labels

    def is_root(self) -> bool:
        """True for the root name ``.``."""
        return not self._labels

    def wire_length(self) -> int:
        """Number of octets of the uncompressed wire encoding."""
        return sum(len(label) + 1 for label in self._labels) + 1

    def __str__(self) -> str:
        if not self._labels:
            return "."
        return ".".join(self._labels)

    def __repr__(self) -> str:
        return f"DomainName({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DomainName):
            return self._folded == other._folded
        if isinstance(other, str):
            try:
                return self._folded == DomainName(other)._folded
            except NameError_:
                return False
        return NotImplemented

    def __lt__(self, other: "DomainName") -> bool:
        if not isinstance(other, DomainName):
            return NotImplemented
        # Canonical DNS ordering compares names right to left (RFC 4034 §6.1).
        return self._folded[::-1] < other._folded[::-1]

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            self._hash = hash(self._folded)
            return self._hash

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    # -- relations ------------------------------------------------------

    def parent(self) -> "DomainName":
        """The name with the most-specific label removed.

        Raises :class:`~repro.errors.NameError_` for the root name.
        """
        if not self._labels:
            raise NameError_("the root name has no parent")
        return DomainName.from_labels(self._labels[1:])

    def ancestors(self) -> Iterator["DomainName"]:
        """Yield every ancestor from the direct parent up to the root."""
        name = self
        while not name.is_root():
            name = name.parent()
            yield name

    def is_subdomain_of(self, other: "DomainName | str") -> bool:
        """True if *self* equals *other* or sits below it in the tree."""
        other_name = other if isinstance(other, DomainName) else DomainName(other)
        if len(other_name._folded) > len(self._folded):
            return False
        if not other_name._folded:
            return True
        return self._folded[-len(other_name._folded):] == other_name._folded

    def relativize(self, origin: "DomainName | str") -> tuple[str, ...]:
        """Labels of *self* below *origin*; raises if not a subdomain."""
        origin_name = origin if isinstance(origin, DomainName) else DomainName(origin)
        if not self.is_subdomain_of(origin_name):
            raise NameError_(f"{self} is not a subdomain of {origin_name}")
        keep = len(self._labels) - len(origin_name._labels)
        return self._labels[:keep]

    def child(self, label: str) -> "DomainName":
        """Prepend *label*, producing a more-specific name."""
        return DomainName.from_labels((label,) + self._labels)

    def folded(self) -> str:
        """Case-folded dotted representation, suitable as a cache key."""
        try:
            return self._folded_str
        except AttributeError:
            self._folded_str = ".".join(self._folded) if self._folded else "."
            return self._folded_str


#: Parse-once cache behind :meth:`DomainName.intern`. One scenario's
#: hostname universe is small (thousands of names), but a long-lived
#: driver running many scenarios with distinct universes would grow an
#: uncapped memo without bound, so the cache resets once it exceeds
#: ``_INTERNED_MAX`` entries. Interning memoizes a pure constructor, so
#: a reset only costs re-parses — it can never change behaviour.
_INTERNED_MAX = 65536
_INTERNED: dict[str, DomainName] = {}

ROOT = DomainName(".")
