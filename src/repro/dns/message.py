"""DNS message model (RFC 1035 §4).

A :class:`Message` carries a header, a question section, and three record
sections. Helper constructors build the common shapes: a recursive query
(:func:`make_query`) and a matching response (:func:`make_response`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.dns.name import DomainName
from repro.dns.rr import ResourceRecord, RRClass, RRType
from repro.errors import WireFormatError


class Opcode(enum.IntEnum):
    """Message OPCODE values."""

    QUERY = 0
    IQUERY = 1
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5


class Rcode(enum.IntEnum):
    """Response RCODE values."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


@dataclass(frozen=True, slots=True)
class Question:
    """A single entry of the question section."""

    qname: DomainName
    qtype: RRType = RRType.A
    qclass: RRClass = RRClass.IN

    def __str__(self) -> str:
        return f"{self.qname} {self.qclass.name} {self.qtype.name}"


@dataclass(frozen=True, slots=True)
class Flags:
    """Header flag bits (QR, AA, TC, RD, RA) plus opcode and rcode."""

    qr: bool = False
    opcode: Opcode = Opcode.QUERY
    aa: bool = False
    tc: bool = False
    rd: bool = True
    ra: bool = False
    rcode: Rcode = Rcode.NOERROR

    def to_wire_bits(self) -> int:
        """Pack the flags into the 16-bit header field."""
        bits = 0
        if self.qr:
            bits |= 0x8000
        bits |= (int(self.opcode) & 0xF) << 11
        if self.aa:
            bits |= 0x0400
        if self.tc:
            bits |= 0x0200
        if self.rd:
            bits |= 0x0100
        if self.ra:
            bits |= 0x0080
        bits |= int(self.rcode) & 0xF
        return bits

    @classmethod
    def from_wire_bits(cls, bits: int) -> "Flags":
        """Unpack the 16-bit header field into a Flags value."""
        try:
            opcode = Opcode((bits >> 11) & 0xF)
        except ValueError as exc:
            raise WireFormatError(f"unknown opcode {(bits >> 11) & 0xF}") from exc
        try:
            rcode = Rcode(bits & 0xF)
        except ValueError as exc:
            raise WireFormatError(f"unknown rcode {bits & 0xF}") from exc
        return cls(
            qr=bool(bits & 0x8000),
            opcode=opcode,
            aa=bool(bits & 0x0400),
            tc=bool(bits & 0x0200),
            rd=bool(bits & 0x0100),
            ra=bool(bits & 0x0080),
            rcode=rcode,
        )


@dataclass(frozen=True, slots=True)
class Message:
    """A complete DNS message."""

    msg_id: int = 0
    flags: Flags = field(default_factory=Flags)
    questions: tuple[Question, ...] = ()
    answers: tuple[ResourceRecord, ...] = ()
    authorities: tuple[ResourceRecord, ...] = ()
    additionals: tuple[ResourceRecord, ...] = ()

    def __post_init__(self) -> None:
        if not 0 <= self.msg_id <= 0xFFFF:
            raise WireFormatError(f"message id out of range: {self.msg_id}")

    @property
    def question(self) -> Question:
        """The sole question; raises if the section is not a singleton."""
        if len(self.questions) != 1:
            raise WireFormatError(
                f"expected exactly one question, found {len(self.questions)}"
            )
        return self.questions[0]

    def is_response(self) -> bool:
        """True when the QR bit is set."""
        return self.flags.qr

    def answer_addresses(self) -> tuple[str, ...]:
        """All IP addresses in the answer section, in order."""
        return tuple(rr.address for rr in self.answers if rr.is_address())

    def min_answer_ttl(self) -> int | None:
        """Smallest TTL across the answer section, or None if empty."""
        if not self.answers:
            return None
        return min(rr.ttl for rr in self.answers)

    def resolve_cname_chain(self, qname: DomainName) -> tuple[ResourceRecord, ...]:
        """Follow CNAMEs from *qname* and return the terminal address records.

        Raises :class:`WireFormatError` on a CNAME loop.
        """
        from repro.dns.rr import NameRecordData  # local import to avoid cycle noise

        current = qname
        seen: set[str] = set()
        while True:
            key = current.folded()
            if key in seen:
                raise WireFormatError(f"CNAME loop at {current}")
            seen.add(key)
            addresses = tuple(
                rr for rr in self.answers if rr.is_address() and rr.name == current
            )
            if addresses:
                return addresses
            cnames = [
                rr
                for rr in self.answers
                if rr.rtype == RRType.CNAME and rr.name == current
            ]
            if not cnames:
                return ()
            rdata = cnames[0].rdata
            assert isinstance(rdata, NameRecordData)
            current = rdata.target

    def with_id(self, msg_id: int) -> "Message":
        """A copy of this message carrying *msg_id*."""
        return replace(self, msg_id=msg_id)


def make_query(
    qname: DomainName | str,
    qtype: RRType | str = RRType.A,
    msg_id: int = 0,
    recursion_desired: bool = True,
) -> Message:
    """Build a standard query message for *qname*/*qtype*."""
    return Message(
        msg_id=msg_id,
        flags=Flags(qr=False, rd=recursion_desired),
        questions=(Question(DomainName(qname), RRType.parse(qtype)),),
    )


def make_response(
    query: Message,
    answers: tuple[ResourceRecord, ...] = (),
    rcode: Rcode = Rcode.NOERROR,
    authoritative: bool = False,
    recursion_available: bool = True,
    authorities: tuple[ResourceRecord, ...] = (),
    additionals: tuple[ResourceRecord, ...] = (),
) -> Message:
    """Build a response mirroring *query*'s id and question section."""
    if query.is_response():
        raise WireFormatError("cannot respond to a message that is itself a response")
    return Message(
        msg_id=query.msg_id,
        flags=Flags(
            qr=True,
            opcode=query.flags.opcode,
            aa=authoritative,
            rd=query.flags.rd,
            ra=recursion_available,
            rcode=rcode,
        ),
        questions=query.questions,
        answers=answers,
        authorities=authorities,
        additionals=additionals,
    )
