#!/usr/bin/env python3
"""Whole-house caching and refresh-ahead: the paper's §8 improvements.

Simulates two local mechanisms over a synthetic trace:

1. a shared per-residence DNS cache (how many blocked connections would
   it have unblocked?), and
2. refresh-on-expiry in that cache (Table 3: a dramatic hit-rate gain at
   a dramatic query cost), including the TTL-floor sweep the paper
   mentions ("the query load will increase if we include names with
   lower TTLs").

Usage:
    python examples/whole_house_cache.py [houses] [hours] [seed]
"""

import sys

from repro.core.context import ContextStudy
from repro.core.improvements import RefreshSimulator
from repro.report.tables import render_table, render_table3
from repro.workload.scenario import ScenarioConfig


def main() -> None:
    houses = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    hours = float(sys.argv[2]) if len(sys.argv) > 2 else 8.0
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 1

    config = ScenarioConfig(seed=seed, houses=houses, duration=hours * 3600.0)
    print(f"Generating {houses} houses x {hours:.0f}h (seed={seed})...")
    study = ContextStudy.from_scenario(config)
    print(f"  {study.trace.summary()}\n")

    # ---- A whole-house cache ----------------------------------------------
    analysis = study.whole_house()
    print("A whole-house cache (§8):")
    print(
        f"  {analysis.moved_conns} connections ({100 * analysis.moved_fraction_of_all:.1f}% "
        f"of all) would move from SC/R to LC (paper: 9.8%)."
    )
    print(
        f"  Benefit by class: SC {analysis.sc_moved}/{analysis.sc_conns} "
        f"({100 * analysis.sc_moved_fraction:.1f}%), "
        f"R {analysis.r_moved}/{analysis.r_conns} ({100 * analysis.r_moved_fraction:.1f}%)."
    )

    # ---- Refreshing (Table 3) ----------------------------------------------
    print("\nRefreshing expiring names (Table 3):")
    comparison = study.refresh(ttl_floor_s=10.0)
    print(render_table3(comparison))
    print(
        f"  Refreshing lifts the hit rate by "
        f"{100 * (comparison.refresh_all.hit_rate - comparison.standard.hit_rate):.1f} points "
        f"but costs {comparison.lookup_blowup:.0f}x the lookups — the paper's "
        "'impractical for most situations' conclusion."
    )

    # ---- TTL-floor sweep ------------------------------------------------------
    print("\nTTL-floor sweep (refresh only names with TTL above the floor):")
    rows = []
    for floor in (300.0, 60.0, 10.0, 1.0):
        simulator = RefreshSimulator(
            study.trace.dns, study.classified, ttl_floor_s=floor, houses=study.trace.houses
        )
        result = simulator.run_refresh_all()
        rows.append(
            (
                f"{floor:.0f}s",
                f"{result.lookups}",
                f"{result.lookups_per_second_per_house:.2f}",
                f"{100 * result.hit_rate:.1f}%",
            )
        )
    print(render_table(("TTL floor", "Lookups", "Lookups/s/house", "Hit rate"), rows))
    print(
        "\nOpen question from the paper: can a policy achieve ~96% hit rates at "
        "costs comparable to the standard cache?"
    )


if __name__ == "__main__":
    main()
