#!/usr/bin/env python3
"""Full study: regenerate every table and figure of the paper.

Generates a larger synthetic trace (default 24 houses, half a simulated
day — pass hours/houses to scale up toward the paper's week), runs the
complete analysis, prints every table, sketches every figure as an ASCII
CDF, and exports the machine-readable artifacts:

    out/dns.log, out/conn.log     — the two Zeek-style datasets
    out/fig*.csv                  — every figure's CDF series

Usage:
    python examples/residential_week.py [houses] [hours] [seed] [outdir] [workers]

A worker count >1 runs the hot pipeline stages (pairing and
classification) on the sharded multiprocessing pipeline; every number
printed is byte-identical to the serial run.
"""

import os
import sys

from repro.core.parallel import parallel_study
from repro.monitor.logs import save_conn_log, save_dns_log
from repro.workload.generate import generate_trace
from repro.report.figures import ascii_cdf, series_to_csv
from repro.report.tables import render_table1, render_table2, render_table3
from repro.workload.scenario import ScenarioConfig


def export_series(outdir: str, name: str, series, x_label: str) -> None:
    path = os.path.join(outdir, f"{name}.csv")
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(series_to_csv(series, x_label=x_label))
    print(f"  wrote {path}")


def main() -> None:
    houses = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    hours = float(sys.argv[2]) if len(sys.argv) > 2 else 12.0
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 1
    outdir = sys.argv[4] if len(sys.argv) > 4 else "out"
    workers = int(sys.argv[5]) if len(sys.argv) > 5 else 1
    os.makedirs(outdir, exist_ok=True)

    config = ScenarioConfig(seed=seed, houses=houses, duration=hours * 3600.0)
    print(f"Generating {houses} houses x {hours:.0f}h (seed={seed})...")
    study = parallel_study(generate_trace(config), workers=workers)
    print(f"  {study.trace.summary()}\n")

    save_dns_log(os.path.join(outdir, "dns.log"), study.trace.dns)
    save_conn_log(os.path.join(outdir, "conn.log"), study.trace.conns)
    print(f"  wrote {outdir}/dns.log and {outdir}/conn.log\n")

    # ---- Table 1 ---------------------------------------------------------
    print("Table 1 — resolver platform usage:")
    print(render_table1(study.resolver_usage()))
    print(f"houses using only the ISP resolvers: {100 * study.local_only_houses():.1f}%\n")

    # ---- Figure 1 --------------------------------------------------------
    gaps = study.gap_analysis()
    print(ascii_cdf({"gap (s)": gaps.series(120)}, title="Figure 1: lookup-to-connection gap"))
    print(
        f"knee at {1000 * gaps.knee:.1f} ms; first-use below/above: "
        f"{100 * gaps.first_use_below_knee:.0f}%/{100 * gaps.first_use_above_knee:.0f}%\n"
    )
    export_series(outdir, "fig1_gap_cdf", gaps.series(200), "gap_seconds")

    # ---- Table 2 / §5 ----------------------------------------------------
    print("\nTable 2 — DNS information origin:")
    print(render_table2(study.breakdown))
    ttl_stats = study.ttl_violations()
    print(f"\n§5.2: {ttl_stats.summary()}")
    prefetch = study.prefetching()
    print(
        f"§5.2: {100 * prefetch.unused_lookup_fraction:.1f}% of lookups unused; "
        f"{100 * prefetch.prefetch_used_fraction:.1f}% of speculative lookups pay off\n"
    )

    # ---- Figure 2 --------------------------------------------------------
    delays = study.lookup_delays()
    print(ascii_cdf({"delay (s)": delays.series(120)}, title="Figure 2 (top): SC+R lookup delays"))
    print(f"median {1000 * delays.median:.1f} ms, p75 {1000 * delays.p75:.1f} ms\n")
    export_series(outdir, "fig2_lookup_delay_cdf", delays.series(200), "delay_seconds")

    contribution = study.contribution()
    series = {"all": contribution.series("all", 120)}
    if contribution.sc_cdf:
        series["SC"] = contribution.series("sc", 120)
    if contribution.r_cdf:
        series["R"] = contribution.series("r", 120)
    print(ascii_cdf(series, title="Figure 2 (bottom): DNS %% contribution"))
    export_series(outdir, "fig2_contribution_cdf", contribution.series("all", 200), "percent")

    quadrant = study.significance_quadrant()
    print("§6 significance quadrant (of SC+R):")
    for label, value in quadrant.as_rows():
        print(f"  {label:<22} {100 * value:5.1f}%")
    print(f"  -> significant for {100 * quadrant.significant_of_all:.1f}% of ALL connections\n")

    # ---- Figure 3 / §7 ---------------------------------------------------
    print("§7 shared-cache hit rates:", {k: f"{100 * v:.1f}%" for k, v in study.hit_rates().items()})
    r_delays = study.r_delays()
    print(
        ascii_cdf(
            {name: cdf.series(100) for name, cdf in sorted(r_delays.items())},
            title="Figure 3 (top): R lookup delay by platform",
        )
    )
    for name, cdf in sorted(r_delays.items()):
        export_series(outdir, f"fig3_r_delay_{name}", cdf.series(200), "delay_seconds")

    throughput = study.throughput()
    series = {name: cdf.series(100) for name, cdf in sorted(throughput.cdfs.items())}
    if throughput.google_filtered:
        series["google-filtered"] = throughput.google_filtered.series(100)
    print(ascii_cdf(series, title="Figure 3 (bottom): throughput by platform"))
    print(
        f"connectivitycheck share: google {100 * throughput.connectivity_share_google:.1f}% "
        f"vs others {100 * throughput.connectivity_share_other:.1f}%\n"
    )
    for name, cdf in sorted(throughput.cdfs.items()):
        export_series(outdir, f"fig3_throughput_{name}", cdf.series(200), "bytes_per_second")

    # ---- §8 / Table 3 ----------------------------------------------------
    whole_house = study.whole_house()
    print(
        f"\n§8 whole-house cache: {100 * whole_house.moved_fraction_of_all:.1f}% of all "
        f"connections move to LC (SC: {100 * whole_house.sc_moved_fraction:.0f}%, "
        f"R: {100 * whole_house.r_moved_fraction:.0f}%)"
    )
    print("\nTable 3 — refreshing expiring names:")
    comparison = study.refresh()
    print(render_table3(comparison))
    print(f"lookup blowup: {comparison.lookup_blowup:.0f}x")


if __name__ == "__main__":
    main()
