#!/usr/bin/env python3
"""Packet-level pipeline: synthesize a pcap, re-extract logs, analyse.

This example exercises the wire-level path a downstream user would take
with a real capture:

1. synthesize a morning of browsing for two houses as *actual packets*
   (RFC 1035 DNS messages inside UDP/IPv4/Ethernet, TCP SYN/FIN flows),
2. write them to a classic pcap file,
3. re-read the pcap with the miniature Zeek (:mod:`repro.monitor.pcap_ingest`)
   to recover the dns.log / conn.log views, and
4. run the paper's analysis on the recovered logs.

Usage:
    python examples/pcap_pipeline.py [out.pcap]
"""

import random
import sys

from repro.core.context import ContextStudy
from repro.dns.message import make_query, make_response
from repro.dns.rr import a_record
from repro.dns.wire import encode_message
from repro.monitor.pcap_ingest import trace_from_pcap
from repro.pcap.packet import build_tcp_packet, build_udp_packet
from repro.pcap.pcapfile import CapturedPacket, PcapWriter
from repro.pcap.tcp import TCPFlags

RESOLVER = "192.168.200.10"
SITES = {
    "www.news.example.com": "60.0.10.1",
    "cdn.news.example.com": "60.0.10.2",
    "ads.tracker.example.net": "60.0.11.1",
    "www.shop.example.org": "60.0.12.1",
}


def synthesize(path: str, seed: int = 1) -> int:
    """Write a small but realistic capture; returns the packet count."""
    rng = random.Random(seed)
    packets: list[CapturedPacket] = []
    msg_id = 0

    def dns_exchange(now: float, house: str, hostname: str, rtt: float, ttl: int = 300) -> float:
        nonlocal msg_id
        msg_id += 1
        sport = rng.randint(32768, 60999)
        query = make_query(hostname, msg_id=msg_id)
        response = make_response(query, answers=(a_record(hostname, SITES[hostname], ttl),))
        packets.append(
            CapturedPacket(now, build_udp_packet(house, sport, RESOLVER, 53, encode_message(query)))
        )
        packets.append(
            CapturedPacket(
                now + rtt, build_udp_packet(RESOLVER, 53, house, sport, encode_message(response))
            )
        )
        return now + rtt

    def tcp_flow(start: float, house: str, server: str, seconds: float, resp_bytes: int) -> None:
        sport = rng.randint(32768, 60999)
        packets.append(CapturedPacket(start, build_tcp_packet(house, sport, server, 443, TCPFlags.SYN)))
        packets.append(
            CapturedPacket(
                start + 0.03,
                build_tcp_packet(server, 443, house, sport, TCPFlags.SYN | TCPFlags.ACK),
            )
        )
        sent = 0
        t = start + 0.06
        while sent < resp_bytes:
            chunk = min(1400, resp_bytes - sent)
            packets.append(
                CapturedPacket(
                    t, build_tcp_packet(server, 443, house, sport, TCPFlags.ACK, payload=b"x" * chunk)
                )
            )
            sent += chunk
            t += seconds / max(1, resp_bytes // 1400)
        packets.append(
            CapturedPacket(start + seconds, build_tcp_packet(house, sport, server, 443, TCPFlags.FIN))
        )

    for house_index, house in enumerate(("10.77.0.10", "10.77.0.11")):
        base = 100.0 + 400.0 * house_index
        # A page visit: blocked lookup, then the page fetch.
        done = dns_exchange(base, house, "www.news.example.com", rtt=0.004)
        tcp_flow(done + 0.002, house, SITES["www.news.example.com"], seconds=4.0, resp_bytes=60_000)
        # A subresource on a slower (authoritative) lookup.
        done = dns_exchange(base + 0.4, house, "cdn.news.example.com", rtt=0.055)
        tcp_flow(done + 0.003, house, SITES["cdn.news.example.com"], seconds=6.0, resp_bytes=200_000)
        # A speculative lookup used much later (class P).
        done = dns_exchange(base + 1.0, house, "www.shop.example.org", rtt=0.003)
        tcp_flow(base + 90.0, house, SITES["www.shop.example.org"], seconds=5.0, resp_bytes=80_000)
        # Reuse from the local cache minutes later (class LC).
        tcp_flow(base + 240.0, house, SITES["www.shop.example.org"], seconds=3.0, resp_bytes=30_000)
        # An unused speculative lookup (never paired).
        dns_exchange(base + 1.2, house, "ads.tracker.example.net", rtt=0.002)
        # No-DNS peer traffic (class N).
        tcp_flow(base + 300.0, house, "70.1.2.3", seconds=60.0, resp_bytes=500_000)

    packets.sort(key=lambda p: p.timestamp)
    with open(path, "wb") as stream:
        writer = PcapWriter(stream)
        for packet in packets:
            writer.write(packet)
        return writer.packets_written


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "synthetic.pcap"
    count = synthesize(path)
    print(f"Wrote {count} packets to {path}")

    trace = trace_from_pcap(path, local_networks=("10.77.",))
    print(f"Recovered from pcap: {trace.summary()}")

    study = ContextStudy(trace)
    print()
    print(study.classification_table())
    print()
    for item in study.classified:
        dns_note = f"paired {item.dns.query}" if item.dns else "no DNS"
        gap = f"gap {item.gap * 1000:7.1f}ms" if item.gap is not None else "            "
        print(
            f"  {item.conn.uid}: {item.conn.resp_h:<15} {item.conn_class.value:<3} {gap}  ({dns_note})"
        )


if __name__ == "__main__":
    main()
