#!/usr/bin/env python3
"""Quickstart: generate a synthetic residential trace and put DNS in context.

Runs the full pipeline of the paper on a small synthetic neighbourhood
(10 houses, 6 simulated hours) and prints the headline results:
Table 2's classification, the blocking fractions, and the significance
quadrant of §6.

Usage:
    python examples/quickstart.py [seed] [workers]

Pass a worker count >1 to run pairing and classification on the sharded
multiprocessing pipeline — the results are byte-identical either way.
"""

import sys

from repro.core.parallel import parallel_study
from repro.workload.generate import generate_trace
from repro.workload.scenario import ScenarioConfig


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    config = ScenarioConfig(seed=seed, houses=10, duration=6 * 3600.0)

    print(f"Generating synthetic residential trace (seed={seed})...")
    trace = generate_trace(config)
    study = parallel_study(trace, workers=workers)
    print(f"  {trace.summary()}\n")

    print("Table 2 — DNS information origin by connection:")
    print(study.classification_table())
    print()

    breakdown = study.breakdown
    print(
        f"{100 * (1 - breakdown.blocked_fraction()):.1f}% of connections never "
        f"block on DNS (paper: ~58%)."
    )

    delays = study.lookup_delays()
    print(
        f"Blocked connections wait a median of {1000 * delays.median:.1f} ms on "
        f"DNS (paper: 8.5 ms); only {100 * delays.over_100ms_fraction:.1f}% wait "
        f"more than 100 ms."
    )

    quadrant = study.significance_quadrant()
    print(
        f"A DNS lookup is 'significant' (>20 ms AND >1% of the transaction) for "
        f"{100 * quadrant.significant_of_all:.1f}% of all connections "
        f"(paper: 3.6%)."
    )

    validation = study.validate_against_truth()
    print(
        f"\nHeuristic classification agrees with simulation ground truth for "
        f"{100 * validation['agreement']:.1f}% of connections."
    )


if __name__ == "__main__":
    main()
