#!/usr/bin/env python3
"""Resolver shootout: the paper's §7 comparison of resolver platforms.

Which public resolver is "best"? The paper's answer: it depends on the
metric. This example reruns the comparison on a synthetic trace and
prints the three §7 metrics side by side:

* shared-cache hit rate (how often the platform answers from cache),
* lookup latency for cache-missing (R) lookups,
* downstream connection throughput (CDN edge selection quality),

including the Android connectivity-check artifact that skews Google's
throughput line.

Usage:
    python examples/resolver_shootout.py [houses] [hours] [seed]
"""

import sys

from repro.core.context import ContextStudy
from repro.report.figures import ascii_cdf
from repro.report.tables import render_table
from repro.workload.scenario import ScenarioConfig

PLATFORMS = ("local", "cloudflare", "opendns", "google")


def main() -> None:
    houses = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    hours = float(sys.argv[2]) if len(sys.argv) > 2 else 8.0
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 1

    config = ScenarioConfig(seed=seed, houses=houses, duration=hours * 3600.0)
    print(f"Generating {houses} houses x {hours:.0f}h (seed={seed})...")
    study = ContextStudy.from_scenario(config)
    print(f"  {study.trace.summary()}\n")

    hit_rates = study.hit_rates()
    r_delays = study.r_delays()
    throughput = study.throughput()

    rows = []
    for platform in PLATFORMS:
        delay_cdf = r_delays.get(platform)
        tput_cdf = throughput.cdfs.get(platform)
        rows.append(
            (
                platform,
                f"{100 * hit_rates.get(platform, 0.0):.1f}%",
                f"{1000 * delay_cdf.median:.1f}ms" if delay_cdf else "-",
                f"{1000 * delay_cdf.quantile(0.95):.1f}ms" if delay_cdf else "-",
                f"{tput_cdf.median / 1000:.1f}kB/s" if tput_cdf else "-",
            )
        )
    print(render_table(("Platform", "Cache hit", "R median", "R p95", "Tput median"), rows))

    print("\nLookup delay for cache-missing (R) lookups:")
    print(
        ascii_cdf(
            {name: cdf.series(100) for name, cdf in sorted(r_delays.items())},
            title="R-lookup delay by platform (CDF, log x)",
        )
    )

    print("\nDownstream connection throughput:")
    series = {name: cdf.series(100) for name, cdf in sorted(throughput.cdfs.items())}
    if throughput.google_filtered is not None:
        series["google-filtered"] = throughput.google_filtered.series(100)
    print(ascii_cdf(series, title="SC+R throughput by platform (CDF, log x)"))
    print(
        f"\nAndroid connectivity checks are {100 * throughput.connectivity_share_google:.1f}% of "
        f"Google-paired connections vs {100 * throughput.connectivity_share_other:.1f}% elsewhere; "
        "the 'google-filtered' line removes them (the paper's dashed line)."
    )

    print(
        "\nConclusion (as in the paper): the metrics conflict — the local ISP wins "
        "on latency, Cloudflare on cache hit rate, Google on tail latency — so no "
        "single platform is 'the best'."
    )


if __name__ == "__main__":
    main()
